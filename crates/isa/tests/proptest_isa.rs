//! Property-based tests for the program model and executor.

use proptest::prelude::*;
use tip_isa::{
    BranchBehavior, Executor, Instr, InstrAddr, InstrIdx, InstrKind, MemBehavior, Program,
    ProgramBuilder, Reg, WrongPath,
};

/// A small random single-function loop program.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        0u32..6,                                  // loop iterations
        proptest::collection::vec(0u8..5, 1..12), // instruction kind codes
        1u64..1_000_000,                          // working set
    )
        .prop_map(|(iters, codes, ws)| {
            let mut b = ProgramBuilder::named("prop");
            let main = b.function("main");
            let body = b.block(main);
            for (i, &code) in codes.iter().enumerate() {
                let reg = Some(Reg::int(1 + (i % 20) as u8));
                let instr = match code {
                    0 => Instr::int_alu(reg, [None, None]),
                    1 => Instr::fp(
                        InstrKind::FpAlu,
                        Some(Reg::fp(1 + (i % 20) as u8)),
                        [None, None],
                    ),
                    2 => Instr::load(
                        reg,
                        None,
                        MemBehavior::Stride {
                            base: 0x1000,
                            stride: 8,
                            footprint: ws,
                        },
                    ),
                    3 => Instr::store(
                        reg,
                        None,
                        MemBehavior::RandomIn {
                            base: 0x8000,
                            footprint: ws.max(8),
                        },
                    ),
                    _ => Instr::nop(),
                };
                b.push(body, instr);
            }
            b.push(
                body,
                Instr::branch(body, BranchBehavior::Loop { taken_iters: iters }),
            );
            let exit = b.block(main);
            b.push(exit, Instr::halt());
            b.build().expect("structurally valid by construction")
        })
}

proptest! {
    #[test]
    fn executor_is_deterministic_and_finite(program in arb_program(), seed in 0u64..100) {
        let a: Vec<_> = Executor::new(&program, seed).collect();
        let b: Vec<_> = Executor::new(&program, seed).collect();
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a.last().unwrap().kind, InstrKind::Halt);
        // Sequence numbers are dense.
        for (i, d) in a.iter().enumerate() {
            prop_assert_eq!(d.seq, i as u64);
        }
    }

    #[test]
    fn next_addr_chain_is_consistent(program in arb_program()) {
        let stream: Vec<_> = Executor::new(&program, 3).collect();
        for pair in stream.windows(2) {
            prop_assert_eq!(pair[0].next_addr, Some(pair[1].addr));
        }
        prop_assert_eq!(stream.last().unwrap().next_addr, None);
    }

    #[test]
    fn addresses_round_trip(program in arb_program()) {
        for i in 0..program.len() {
            let idx = InstrIdx::new(i as u32);
            prop_assert_eq!(program.idx_of_addr(program.addr_of(idx)), Some(idx));
        }
        // Addresses past the program do not resolve.
        let past_end = InstrAddr::new(program.addr_of(InstrIdx::new(0)).raw() + 4 * program.len() as u64);
        prop_assert_eq!(program.idx_of_addr(past_end), None);
    }

    #[test]
    fn symbols_nest_properly(program in arb_program()) {
        use tip_isa::Granularity;
        // Instructions sharing a block must share a function.
        for i in 0..program.len() {
            for j in 0..program.len() {
                let (a, b) = (InstrIdx::new(i as u32), InstrIdx::new(j as u32));
                if program.symbol_of(a, Granularity::BasicBlock)
                    == program.symbol_of(b, Granularity::BasicBlock)
                {
                    prop_assert_eq!(
                        program.symbol_of(a, Granularity::Function),
                        program.symbol_of(b, Granularity::Function)
                    );
                }
            }
        }
    }

    #[test]
    fn wrong_path_stays_inside_the_program(program in arb_program(), start in 0u32..8, seed in 0u64..20) {
        let start = InstrIdx::new(start % program.len() as u32);
        for w in WrongPath::new(&program, start, seed).take(64) {
            prop_assert!(w.idx.index() < program.len());
            prop_assert_eq!(program.addr_of(w.idx), w.addr);
        }
    }

    #[test]
    fn mem_addresses_respect_behavior_bounds(program in arb_program(), seed in 0u64..20) {
        for d in Executor::new(&program, seed) {
            if let Some(addr) = d.mem_addr {
                let instr = program.instr(d.idx);
                match instr.mem_behavior().expect("mem instr has behavior") {
                    MemBehavior::Stride { base, footprint, .. }
                    | MemBehavior::RandomIn { base, footprint } => {
                        prop_assert!(addr >= *base);
                        prop_assert!(addr < base + footprint.max(&8) + 8);
                    }
                    MemBehavior::Fixed { addr: a } => prop_assert_eq!(addr, *a),
                }
            }
        }
    }
}
