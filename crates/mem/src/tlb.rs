//! TLBs and the page-table-walker latency model.

use crate::PAGE_BYTES;
use serde::{Deserialize, Serialize};
use tip_isa::snap::{self, SnapError, SnapReader};

/// Configuration of one TLB level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Lookup latency in cycles (0 = overlapped with the cache access).
    pub hit_latency: u64,
}

/// Hit/miss counters for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Misses at this level.
    pub misses: u64,
}

/// A fully-associative (L1) or direct-mapped (L2) TLB with LRU replacement.
///
/// Only timing matters here (virtual addresses equal physical addresses in
/// the synthetic workloads), so an entry is just a page number.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<(u64, u64)>, // (page, lru stamp)
    stamp: u64,
    stats: TlbStats,
    /// Index of the most recent hit — purely a host-side accelerator for the
    /// associative scan (page locality makes repeat hits the common case).
    /// Not part of the architectural state: never serialized, and stale
    /// values are harmless because the page is re-checked before use.
    last_hit: usize,
    /// Host-side page → `entries` index map, kept exactly in sync with
    /// `entries`. Pages are unique within a TLB, so map membership equals
    /// scan membership — this turns the O(entries) associative scan (512
    /// entries for the shared L2 TLB) into O(1) without touching the
    /// modelled LRU state. Never serialized; rebuilt on restore.
    index: std::collections::HashMap<u64, usize>,
    /// Host-side eviction accelerator: the oldest entries found by the last
    /// eviction scan as `(index, stamp)` pairs, sorted newest-first so the
    /// oldest pops off the end. Stamps are unique and only ever move
    /// forward, so a candidate whose stamp is unchanged is *still* strictly
    /// the LRU entry and can be evicted without rescanning; a touched
    /// candidate fails the stamp check and is discarded. Never serialized.
    victims: Vec<(u32, u64)>,
}

/// How many eviction candidates one scan harvests (amortizes the
/// O(entries) stamp scan over up to this many evictions while the victims
/// stay untouched — the common case in a thrashing phase, where the oldest
/// entries are old precisely because nothing hits them).
const VICTIM_CANDIDATES: usize = 8;

impl Tlb {
    /// Creates an empty TLB.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        let capacity = config.entries as usize;
        Tlb {
            entries: Vec::with_capacity(capacity),
            stamp: 0,
            stats: TlbStats::default(),
            config,
            last_hit: 0,
            index: std::collections::HashMap::with_capacity(capacity),
            victims: Vec::with_capacity(VICTIM_CANDIDATES),
        }
    }

    /// Looks up `page`; returns whether it hit, updating LRU state.
    pub fn lookup(&mut self, page: u64) -> bool {
        self.stats.accesses += 1;
        self.stamp += 1;
        // Memoized fast path: pages are unique within a TLB, so if the
        // last-hit slot still holds `page` it is *the* matching entry and
        // the LRU/stats updates below are identical to the map path's.
        if let Some(e) = self.entries.get_mut(self.last_hit) {
            if e.0 == page {
                e.1 = self.stamp;
                return true;
            }
        }
        if let Some(&i) = self.index.get(&page) {
            self.entries[i].1 = self.stamp;
            self.last_hit = i;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Installs `page`, evicting the LRU entry when full.
    pub fn fill(&mut self, page: u64) {
        self.stamp += 1;
        if let Some(&i) = self.index.get(&page) {
            self.entries[i].1 = self.stamp;
            return;
        }
        if self.entries.len() < self.config.entries as usize {
            self.entries.push((page, self.stamp));
            self.index.insert(page, self.entries.len() - 1);
        } else {
            let victim = self.lru_victim();
            self.index.remove(&self.entries[victim].0);
            self.index.insert(page, victim);
            self.entries[victim] = (page, self.stamp);
        }
    }

    /// Index of the least-recently-used entry — exactly the entry a full
    /// min-stamp scan would pick, but amortized through the `victims`
    /// candidate list.
    ///
    /// Correctness: a scan observes every entry's stamp at one instant, and
    /// stamps are unique and strictly increasing on every touch. If the
    /// candidate with the smallest recorded stamp is unchanged, every other
    /// entry (including any candidate touched since — its new stamp exceeds
    /// all scan-time stamps) still carries a larger stamp, so it remains
    /// strictly the oldest. Stale candidates are simply skipped.
    fn lru_victim(&mut self) -> usize {
        loop {
            match self.victims.pop() {
                Some((i, s)) => {
                    let i = i as usize;
                    if self.entries[i].1 == s {
                        return i;
                    }
                }
                None => {
                    for (i, e) in self.entries.iter().enumerate() {
                        if self.victims.len() < VICTIM_CANDIDATES || e.1 < self.victims[0].1 {
                            let pos = self.victims.partition_point(|&(_, s)| s > e.1);
                            self.victims.insert(pos, (i as u32, e.1));
                            if self.victims.len() > VICTIM_CANDIDATES {
                                self.victims.remove(0);
                            }
                        }
                    }
                    debug_assert!(!self.victims.is_empty());
                }
            }
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Serializes the resident entries, LRU clock, and counters.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_len(out, self.entries.len());
        for &(page, stamp) in &self.entries {
            snap::put_u64(out, page);
            snap::put_u64(out, stamp);
        }
        snap::put_u64(out, self.stamp);
        snap::put_u64(out, self.stats.accesses);
        snap::put_u64(out, self.stats.misses);
    }

    /// Restores a TLB captured by [`Tlb::snapshot_into`] against `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncation or when the snapshot holds more
    /// entries than `config` allows.
    pub fn restore(config: TlbConfig, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_of(16)?;
        if n > config.entries as usize {
            return Err(SnapError::Malformed("more TLB entries than configured"));
        }
        let mut entries = Vec::with_capacity(config.entries as usize);
        for _ in 0..n {
            entries.push((r.u64()?, r.u64()?));
        }
        let stamp = r.u64()?;
        let stats = TlbStats {
            accesses: r.u64()?,
            misses: r.u64()?,
        };
        let index = entries.iter().enumerate().map(|(i, e)| (e.0, i)).collect();
        Ok(Tlb {
            config,
            entries,
            stamp,
            stats,
            last_hit: 0,
            index,
            victims: Vec::with_capacity(VICTIM_CANDIDATES),
        })
    }
}

/// One side (I or D) of the two-level TLB hierarchy plus the shared
/// page-table-walker latency.
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    l1: Tlb,
    l2: Tlb,
    /// Full page-table-walk latency in cycles (three-level walk hitting the
    /// cache hierarchy; flattened to a constant).
    walk_latency: u64,
}

impl TlbHierarchy {
    /// Creates a hierarchy with the given L1/L2 configs and walk latency.
    #[must_use]
    pub fn new(l1: TlbConfig, l2: TlbConfig, walk_latency: u64) -> Self {
        TlbHierarchy {
            l1: Tlb::new(l1),
            l2: Tlb::new(l2),
            walk_latency,
        }
    }

    /// Translates `vaddr` at `cycle`; returns the cycle the physical address
    /// is available.
    pub fn translate(&mut self, vaddr: u64, cycle: u64) -> u64 {
        let page = vaddr / PAGE_BYTES;
        if self.l1.lookup(page) {
            return cycle + self.l1.config.hit_latency;
        }
        if self.l2.lookup(page) {
            self.l1.fill(page);
            return cycle + self.l2.config.hit_latency;
        }
        self.l2.fill(page);
        self.l1.fill(page);
        cycle + self.walk_latency
    }

    /// L1 TLB counters.
    #[must_use]
    pub fn l1_stats(&self) -> TlbStats {
        self.l1.stats()
    }

    /// L2 TLB counters.
    #[must_use]
    pub fn l2_stats(&self) -> TlbStats {
        self.l2.stats()
    }

    /// Serializes both levels (the walk latency comes from configuration).
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        self.l1.snapshot_into(out);
        self.l2.snapshot_into(out);
    }

    /// Restores a hierarchy captured by [`TlbHierarchy::snapshot_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when either level fails to decode.
    pub fn restore(
        l1: TlbConfig,
        l2: TlbConfig,
        walk_latency: u64,
        r: &mut SnapReader<'_>,
    ) -> Result<Self, SnapError> {
        Ok(TlbHierarchy {
            l1: Tlb::restore(l1, r)?,
            l2: Tlb::restore(l2, r)?,
            walk_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> TlbHierarchy {
        TlbHierarchy::new(
            TlbConfig {
                entries: 2,
                hit_latency: 0,
            },
            TlbConfig {
                entries: 4,
                hit_latency: 8,
            },
            80,
        )
    }

    #[test]
    fn cold_walk_then_l1_hit() {
        let mut t = hierarchy();
        assert_eq!(t.translate(0x1000, 100), 180); // walk
        assert_eq!(t.translate(0x1008, 200), 200); // same page, L1 hit
        assert_eq!(t.l1_stats().misses, 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut t = hierarchy();
        t.translate(0, 0);
        t.translate(PAGE_BYTES, 0);
        t.translate(2 * PAGE_BYTES, 0); // evicts page 0 from the 2-entry L1
        let ready = t.translate(0, 1_000);
        assert_eq!(ready, 1_008, "page 0 should hit in L2");
    }

    #[test]
    fn hierarchy_snapshot_roundtrips() {
        let mut t = hierarchy();
        t.translate(0, 0);
        t.translate(PAGE_BYTES, 10);
        t.translate(2 * PAGE_BYTES, 20);

        let mut buf = Vec::new();
        t.snapshot_into(&mut buf);
        let mut r = SnapReader::new(&buf);
        let mut restored =
            TlbHierarchy::restore(t.l1.config().clone(), t.l2.config().clone(), 80, &mut r)
                .unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.l1_stats(), t.l1_stats());
        assert_eq!(restored.l2_stats(), t.l2_stats());
        // Same LRU decisions after restore.
        for (addr, cycle) in [(0u64, 100u64), (3 * PAGE_BYTES, 110), (PAGE_BYTES, 120)] {
            assert_eq!(restored.translate(addr, cycle), t.translate(addr, cycle));
        }
    }

    #[test]
    fn restore_rejects_overfull_tlb() {
        let mut t = Tlb::new(TlbConfig {
            entries: 4,
            hit_latency: 0,
        });
        for p in 0..4 {
            t.fill(p);
        }
        let mut buf = Vec::new();
        t.snapshot_into(&mut buf);
        let smaller = TlbConfig {
            entries: 2,
            hit_latency: 0,
        };
        assert!(Tlb::restore(smaller, &mut SnapReader::new(&buf)).is_err());
    }

    #[test]
    fn tlb_lru_eviction() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            hit_latency: 0,
        });
        t.fill(1);
        t.fill(2);
        assert!(t.lookup(1)); // 2 becomes LRU
        t.fill(3);
        assert!(t.lookup(1));
        assert!(!t.lookup(2));
        assert_eq!(t.stats().accesses, 3);
        assert_eq!(t.stats().misses, 1);
    }
}
