//! DRAM latency/bandwidth model.

use serde::{Deserialize, Serialize};
use tip_isa::snap::{self, SnapError, SnapReader};

/// DRAM model parameters (Table 1: 16 GB DDR3 FR-FCFS, 25.6 GB/s peak).
///
/// The model is a fixed access latency plus a channel-occupancy term: each
/// 64 B line transfer occupies the channel for `transfer_cycles`, so bursts
/// of misses queue behind each other, bounding effective bandwidth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Device access latency in core cycles (row activate + CAS + transfer,
    /// expressed at the 3.2 GHz core clock).
    pub access_latency: u64,
    /// Core cycles one 64 B transfer occupies the channel:
    /// 64 B / 25.6 GB/s at 3.2 GHz = 8 cycles.
    pub transfer_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // 14-14-14 at 1 GHz is ~42 ns of device latency, ~134 cycles at
        // 3.2 GHz; transfer: 64 B / 25.6 GB/s = 2.5 ns = 8 cycles.
        DramConfig {
            access_latency: 134,
            transfer_cycles: 8,
        }
    }
}

/// The DRAM channel.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Earliest cycle the channel is free.
    next_free: u64,
    accesses: u64,
}

impl Dram {
    /// Creates an idle channel.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        Dram {
            config,
            next_free: 0,
            accesses: 0,
        }
    }

    /// Issues a line fetch at `cycle`; returns the data-ready cycle.
    pub fn access(&mut self, cycle: u64) -> u64 {
        self.accesses += 1;
        let start = cycle.max(self.next_free);
        self.next_free = start + self.config.transfer_cycles;
        start + self.config.access_latency
    }

    /// Number of line transfers so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The model parameters.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Serializes the channel-occupancy state and access counter.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_u64(out, self.next_free);
        snap::put_u64(out, self.accesses);
    }

    /// Restores a channel captured by [`Dram::snapshot_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is truncated.
    pub fn restore(config: DramConfig, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Dram {
            config,
            next_free: r.u64()?,
            accesses: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_access_has_base_latency() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.access(1000), 1000 + 134);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut d = Dram::new(DramConfig {
            access_latency: 100,
            transfer_cycles: 8,
        });
        let a = d.access(0);
        let b = d.access(0);
        let c = d.access(0);
        assert_eq!(a, 100);
        assert_eq!(b, 108);
        assert_eq!(c, 116);
        assert_eq!(d.accesses(), 3);
    }

    #[test]
    fn snapshot_preserves_channel_occupancy() {
        let mut d = Dram::new(DramConfig {
            access_latency: 100,
            transfer_cycles: 8,
        });
        d.access(0);
        d.access(0);
        let mut buf = Vec::new();
        d.snapshot_into(&mut buf);
        let mut restored = Dram::restore(d.config().clone(), &mut SnapReader::new(&buf)).unwrap();
        assert_eq!(restored.accesses(), 2);
        // The third access still queues behind the in-flight transfers.
        assert_eq!(restored.access(0), d.access(0));
    }

    #[test]
    fn idle_channel_does_not_penalize() {
        let mut d = Dram::new(DramConfig {
            access_latency: 100,
            transfer_cycles: 8,
        });
        d.access(0);
        // Long after the transfer completed: no queueing.
        assert_eq!(d.access(1_000), 1_100);
    }
}
