//! Memory-hierarchy substrate for the TIP reproduction.
//!
//! Implements the memory system of Table 1 of the paper as a
//! latency-composition model: set-associative caches with MSHR-limited
//! miss concurrency ([`Cache`]), two-level TLBs with a page-table-walker
//! latency model ([`TlbHierarchy`]), a bandwidth-limited DRAM model
//! ([`Dram`]), and [`MemSystem`] which wires them into the I-side and D-side
//! paths the out-of-order core uses.
//!
//! Every access takes the current cycle and returns the cycle at which the
//! data is available; the caches update replacement and MSHR state as a side
//! effect. This style (functional lookup + completion times) is exact enough
//! to produce the stall distributions the paper's profilers attribute, while
//! keeping the simulator fast and single-threaded.
//!
//! # Example
//!
//! ```
//! use tip_mem::{MemConfig, MemSystem};
//!
//! let mut mem = MemSystem::new(&MemConfig::default());
//! let cold = mem.access_data(0x4000, 0, false);
//! let warm = mem.access_data(0x4000, cold.ready, false);
//! assert!(warm.ready - cold.ready < cold.ready - 0); // second access hits L1
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod config;
mod dram;
mod system;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use config::MemConfig;
pub use dram::{Dram, DramConfig};
pub use system::{DataAccess, HitLevel, MemStats, MemSystem};
pub use tlb::{Tlb, TlbConfig, TlbHierarchy, TlbStats};

/// Bytes per cache line throughout the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// Bytes per virtual-memory page.
pub const PAGE_BYTES: u64 = 4096;
