//! The composed memory system: I-side and D-side access paths.

use crate::cache::{Cache, CacheStats};
use crate::config::MemConfig;
use crate::dram::Dram;
use crate::tlb::{TlbHierarchy, TlbStats};
use crate::LINE_BYTES;
use serde::{Deserialize, Serialize};
use tip_isa::snap::{SnapError, SnapReader};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// Level-1 cache.
    L1,
    /// Unified L2.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

/// The outcome of a data-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Cycle the data is available (includes address translation).
    pub ready: u64,
    /// Deepest level the access had to go to.
    pub level: HitLevel,
}

/// Aggregated memory-system counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1I counters.
    pub l1i: CacheStats,
    /// L1D counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// LLC counters.
    pub llc: CacheStats,
    /// I-TLB counters.
    pub itlb: TlbStats,
    /// D-TLB counters.
    pub dtlb: TlbStats,
    /// DRAM line transfers.
    pub dram_accesses: u64,
}

/// The full memory system of Table 1: private L1 I/D, unified L2, LLC, DRAM,
/// and two-level TLBs with a page-table walker.
///
/// Accesses are physical (= virtual) addresses; only timing is modelled.
#[derive(Debug, Clone)]
pub struct MemSystem {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    dram: Dram,
    itlb: TlbHierarchy,
    dtlb: TlbHierarchy,
}

impl MemSystem {
    /// Creates a cold memory system.
    #[must_use]
    pub fn new(config: &MemConfig) -> Self {
        MemSystem {
            l1i: Cache::new(config.l1i.clone()),
            l1d: Cache::new(config.l1d.clone()),
            l2: Cache::new(config.l2.clone()),
            llc: Cache::new(config.llc.clone()),
            dram: Dram::new(config.dram.clone()),
            itlb: TlbHierarchy::new(
                config.itlb.clone(),
                config.l2_tlb.clone(),
                config.ptw_latency,
            ),
            dtlb: TlbHierarchy::new(
                config.dtlb.clone(),
                config.l2_tlb.clone(),
                config.ptw_latency,
            ),
        }
    }

    /// Walks the shared levels (L2 → LLC → DRAM) for a line miss issued at
    /// `cycle`; returns the fill-ready cycle and deepest level reached.
    fn shared_access(&mut self, line: u64, cycle: u64) -> (u64, HitLevel) {
        let l2 = self.l2.lookup(line, cycle);
        if l2.hit || l2.merged {
            return (l2.issue, HitLevel::L2);
        }
        let llc = self.llc.lookup(line, l2.issue);
        if llc.hit || llc.merged {
            let ready = llc.issue;
            self.l2.register_miss(line, ready);
            return (ready, HitLevel::Llc);
        }
        let ready = self.dram.access(llc.issue);
        self.llc.register_miss(line, ready);
        self.l2.register_miss(line, ready);
        (ready, HitLevel::Dram)
    }

    /// Fetches the instruction line containing `addr` at `cycle`; returns the
    /// cycle the line is available to the front-end.
    pub fn access_inst(&mut self, addr: u64, cycle: u64) -> u64 {
        let t_ready = self.itlb.translate(addr, cycle);
        let line = addr / LINE_BYTES;
        let l1 = self.l1i.lookup(line, cycle);
        let ready = if l1.hit || l1.merged {
            l1.issue
        } else {
            let (fill, _) = self.shared_access(line, l1.issue);
            self.l1i.register_miss(line, fill);
            if self.l1i.config().next_line_prefetch {
                // The prefetch is issued alongside the demand miss, so a
                // sequential stream sees it arrive roughly one transfer
                // later rather than one full round-trip later.
                self.prefetch_into_l1i(line + 1, l1.issue);
            }
            fill
        };
        ready.max(t_ready)
    }

    /// Performs a data access for `addr` at `cycle`. Stores probe and fill
    /// the hierarchy identically (write-allocate); their latency matters for
    /// store-buffer drain.
    pub fn access_data(&mut self, addr: u64, cycle: u64, is_store: bool) -> DataAccess {
        let _ = is_store;
        let t_ready = self.dtlb.translate(addr, cycle);
        let line = addr / LINE_BYTES;
        let l1 = self.l1d.lookup(line, cycle);
        let (ready, level) = if l1.hit || l1.merged {
            (l1.issue, HitLevel::L1)
        } else {
            let (fill, level) = self.shared_access(line, l1.issue);
            self.l1d.register_miss(line, fill);
            if self.l1d.config().next_line_prefetch {
                // Issued alongside the demand miss (see access_inst).
                self.prefetch_into_l1d(line + 1, l1.issue);
            }
            (fill, level)
        };
        DataAccess {
            ready: ready.max(t_ready),
            level,
        }
    }

    /// Translates a data address only (used by the page-table-walk phase of
    /// faulting loads).
    pub fn translate_data(&mut self, addr: u64, cycle: u64) -> u64 {
        self.dtlb.translate(addr, cycle)
    }

    fn prefetch_into_l1d(&mut self, line: u64, cycle: u64) {
        if !self.l1d.contains(line * LINE_BYTES) {
            // Next-line prefetch from L2: the line arrives when the shared
            // levels deliver it, and a demand access before then merges with
            // the in-flight fill.
            let (fill, _) = self.shared_access(line, cycle);
            self.l1d.register_prefetch(line, fill);
        }
    }

    fn prefetch_into_l1i(&mut self, line: u64, cycle: u64) {
        if !self.l1i.contains(line * LINE_BYTES) {
            let (fill, _) = self.shared_access(line, cycle);
            self.l1i.register_prefetch(line, fill);
        }
    }

    /// Serializes every stateful component — cache tag arrays, MSHRs, TLB
    /// entries, DRAM channel occupancy, and all counters — for a checkpoint.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        self.l1i.snapshot_into(out);
        self.l1d.snapshot_into(out);
        self.l2.snapshot_into(out);
        self.llc.snapshot_into(out);
        self.dram.snapshot_into(out);
        self.itlb.snapshot_into(out);
        self.dtlb.snapshot_into(out);
    }

    /// Restores a memory system captured by [`MemSystem::snapshot_into`]
    /// against `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is damaged or the recorded
    /// geometry disagrees with `config`.
    pub fn restore(config: &MemConfig, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MemSystem {
            l1i: Cache::restore(config.l1i.clone(), r)?,
            l1d: Cache::restore(config.l1d.clone(), r)?,
            l2: Cache::restore(config.l2.clone(), r)?,
            llc: Cache::restore(config.llc.clone(), r)?,
            dram: Dram::restore(config.dram.clone(), r)?,
            itlb: TlbHierarchy::restore(
                config.itlb.clone(),
                config.l2_tlb.clone(),
                config.ptw_latency,
                r,
            )?,
            dtlb: TlbHierarchy::restore(
                config.dtlb.clone(),
                config.l2_tlb.clone(),
                config.ptw_latency,
                r,
            )?,
        })
    }

    /// A snapshot of all counters.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            llc: self.llc.stats(),
            itlb: self.itlb.l1_stats(),
            dtlb: self.dtlb.l1_stats(),
            dram_accesses: self.dram.accesses(),
        }
    }
}

// The memory system travels inside a `Core` to executor worker threads;
// keep it `Send` (no `Rc`, no thread-bound state) by construction.
const _: () = {
    const fn send<T: Send>() {}
    send::<MemSystem>();
    send::<MemStats>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemSystem {
        MemSystem::new(&MemConfig::default())
    }

    #[test]
    fn cold_access_goes_to_dram_then_hits_l1() {
        let mut m = system();
        let a = m.access_data(0x10_0000, 0, false);
        assert_eq!(a.level, HitLevel::Dram);
        let b = m.access_data(0x10_0000, a.ready + 1, false);
        assert_eq!(b.level, HitLevel::L1);
        assert!(b.ready - (a.ready + 1) <= 3);
    }

    #[test]
    fn latencies_are_ordered_by_level() {
        let mut m = system();
        // Warm the hierarchy at various levels by exploiting capacities:
        // line A in everything, then evict from L1 only (fill many lines
        // mapping to A's set).
        let a = 0x20_0000u64;
        m.access_data(a, 0, false);
        // 64 sets in L1D; lines conflicting with A are a + k*64*64 bytes.
        for k in 1..=8 {
            m.access_data(a + k * 64 * 64, 10_000 + k * 1_000, false);
        }
        let t = 1_000_000;
        let l2_hit = m.access_data(a, t, false);
        assert_eq!(l2_hit.level, HitLevel::L2);
        let l1_hit = m.access_data(a, t + 10_000, false);
        assert_eq!(l1_hit.level, HitLevel::L1);
        assert!(l1_hit.ready - (t + 10_000) < l2_hit.ready - t);
    }

    #[test]
    fn instruction_fetch_misses_then_hits() {
        let mut m = system();
        let cold = m.access_inst(0x1_0000, 0);
        assert!(cold > 40, "cold ifetch should reach beyond the LLC");
        let warm = m.access_inst(0x1_0000, cold + 1);
        assert_eq!(warm, cold + 1 + 1, "warm ifetch is an L1I hit");
    }

    #[test]
    fn next_line_prefetch_warms_the_following_line() {
        let mut m = system();
        let a = m.access_data(0x40_0000, 0, false);
        // The next line should now be resident without a demand miss.
        let b = m.access_data(0x40_0000 + 64, a.ready + 100, false);
        assert_eq!(b.level, HitLevel::L1);
        assert!(m.stats().l1d.prefetches > 0);
    }

    #[test]
    fn tlb_walk_dominates_first_touch_of_new_page() {
        let mut m = system();
        // Touch page 0 to warm caches but not page 1's translation.
        m.access_data(0x0, 0, false);
        let t = 100_000;
        let a = m.access_data(8, t, false); // same page: L1 + TLB hit
        assert_eq!(a.ready, t + 3);
        let stats_before = m.stats().dtlb.misses;
        let b = m.access_data(0x80_0000, t + 10, false); // new page
        assert!(m.stats().dtlb.misses > stats_before);
        assert!(b.ready >= t + 10 + 80, "PTW latency applies");
    }

    #[test]
    fn snapshot_restores_identical_timing() {
        let mut m = system();
        // Warm the hierarchy with a mix of in-flight and resident lines.
        for k in 0..32u64 {
            m.access_data(0x10_0000 + k * 64, k * 7, (k % 3) == 0);
            m.access_inst(0x1_0000 + k * 64, k * 5);
        }
        let mut buf = Vec::new();
        m.snapshot_into(&mut buf);
        let mut restored =
            MemSystem::restore(&MemConfig::default(), &mut SnapReader::new(&buf)).unwrap();
        assert_eq!(restored.stats(), m.stats());
        // Bit-identical timing from here on.
        for k in 0..64u64 {
            let addr = 0x10_0000 + (k * 192) % 8192;
            let cycle = 10_000 + k * 11;
            assert_eq!(
                restored.access_data(addr, cycle, false),
                m.access_data(addr, cycle, false)
            );
            assert_eq!(
                restored.access_inst(0x1_0000 + k * 64, cycle),
                m.access_inst(0x1_0000 + k * 64, cycle)
            );
        }
        assert_eq!(restored.stats(), m.stats());
    }

    #[test]
    fn damaged_system_snapshot_is_rejected() {
        let mut m = system();
        m.access_data(0x4000, 0, false);
        let mut buf = Vec::new();
        m.snapshot_into(&mut buf);
        // Truncations at coarse strides (every byte is slow on a big buffer).
        for cut in (0..buf.len()).step_by(97) {
            assert!(
                MemSystem::restore(&MemConfig::default(), &mut SnapReader::new(&buf[..cut]))
                    .is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut m = system();
        m.access_data(0x1000, 0, false);
        m.access_data(0x2000, 10, true);
        m.access_inst(0x3000, 20);
        let s = m.stats();
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l1i.accesses, 1);
        assert!(s.dram_accesses >= 3);
    }
}
