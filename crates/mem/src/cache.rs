//! Set-associative cache with LRU replacement and MSHR-limited misses.

use crate::LINE_BYTES;
use serde::{Deserialize, Serialize};
use tip_isa::snap::{self, SnapError, SnapReader};

/// Configuration of one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Human-readable level name ("L1D", "L2", ...).
    pub name: String,
    /// Total capacity in bytes. Must be a multiple of `ways * 64`.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access (hit) latency in cycles.
    pub hit_latency: u64,
    /// Number of Miss Status Holding Registers: the maximum number of
    /// outstanding misses; further misses stall until an MSHR frees.
    pub mshrs: u32,
    /// Whether a miss also prefetches the next line (the paper's BOOM config
    /// uses a next-line prefetcher from L2 into the L1s).
    pub next_line_prefetch: bool,
    /// Model banked-array conflicts: an address-dependent extra hit cycle
    /// (deterministic per line). Real L1Ds are banked, and this conflict
    /// jitter is what keeps commit-group alignment from being perfectly
    /// periodic in tight loops.
    pub bank_conflicts: bool,
}

impl CacheConfig {
    /// Number of sets implied by size/ways/line size.
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * LINE_BYTES)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses observed.
    pub accesses: u64,
    /// Demand misses (excludes prefetches).
    pub misses: u64,
    /// Prefetch fills issued.
    pub prefetches: u64,
    /// Cycles an access was delayed waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
}

impl CacheStats {
    /// Demand miss ratio, or 0 when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    /// LRU stamp: higher = more recently used.
    stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct Mshr {
    line: u64,
    /// Cycle the fill completes and the MSHR frees.
    complete: u64,
}

/// The result of probing a cache: hit or miss, and when the line can be
/// consumed assuming the miss is serviced with `fill_latency` beyond the
/// cache's own hit latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Lookup {
    pub hit: bool,
    /// The access merged with an in-flight miss; `issue` is then the cycle
    /// the in-flight fill delivers the data (do not walk the next level).
    pub merged: bool,
    /// The cycle the access may begin, after any MSHR stall.
    pub start: u64,
    /// For misses: the cycle at which the miss request is issued to the next
    /// level (equals `start + hit_latency`, the tag check time). For merged
    /// misses: the data-ready cycle.
    pub issue: u64,
}

/// One level of set-associative cache.
///
/// Timing model: a hit at cycle `c` returns data at `c + hit_latency`. A miss
/// needs a free MSHR; if all MSHRs are busy the access is delayed until the
/// earliest outstanding miss completes. Misses to a line that already has an
/// outstanding MSHR merge into it and complete together.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    num_sets: u64,
    ways: usize,
    mshrs: Vec<Mshr>,
    stamp: u64,
    stats: CacheStats,
    /// Host-side memo of the most recent hit (`line`, way index): repeated
    /// accesses to one line skip the set scan. Not architectural state — the
    /// way is revalidated (valid + tag) before use, so staleness after an
    /// eviction is harmless. Never serialized.
    last_line: u64,
    last_way: usize,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not describe at least one set.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(num_sets > 0, "cache {} has no sets", config.name);
        let ways = config.ways as usize;
        Cache {
            sets: vec![
                Way {
                    tag: 0,
                    valid: false,
                    stamp: 0
                };
                (num_sets as usize) * ways
            ],
            num_sets,
            ways,
            mshrs: Vec::with_capacity(config.mshrs as usize),
            stamp: 0,
            stats: CacheStats::default(),
            config,
            last_line: u64::MAX,
            last_way: 0,
        }
    }

    /// This cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, line: u64) -> usize {
        // Set counts are powers of two for every Table 1 configuration, so
        // the modulo reduces to a mask; keep `%` as the general fallback.
        let set = if self.num_sets.is_power_of_two() {
            line & (self.num_sets - 1)
        } else {
            line % self.num_sets
        };
        (set as usize) * self.ways
    }

    fn probe(&mut self, line: u64) -> bool {
        self.stamp += 1;
        // Memoized fast path: the way is revalidated, and a hit performs
        // exactly the stamp update the scan below would (tags are unique
        // within a set, so the scan could only find this same way).
        if line == self.last_line {
            if let Some(w) = self.sets.get_mut(self.last_way) {
                if w.valid && w.tag == line {
                    w.stamp = self.stamp;
                    return true;
                }
            }
        }
        let base = self.set_index(line);
        for (i, w) in self.sets[base..base + self.ways].iter_mut().enumerate() {
            if w.valid && w.tag == line {
                w.stamp = self.stamp;
                self.last_line = line;
                self.last_way = base + i;
                return true;
            }
        }
        false
    }

    /// Inserts `line`, evicting the LRU way of its set.
    pub(crate) fn fill(&mut self, line: u64) {
        let base = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[base..base + self.ways];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            w.stamp = stamp;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.stamp } else { 0 })
            .expect("cache set has at least one way");
        *victim = Way {
            tag: line,
            valid: true,
            stamp,
        };
    }

    fn purge_mshrs(&mut self, cycle: u64) {
        if !self.mshrs.is_empty() {
            self.mshrs.retain(|m| m.complete > cycle);
        }
    }

    /// Looks up `line` at `cycle`. On a hit the line's LRU stamp updates; on
    /// a miss, MSHR availability determines when the miss may start.
    ///
    /// An access to a line whose fill is still in flight (an MSHR holds it)
    /// merges with that miss and completes when the fill does — it does not
    /// see the data early even though the tag array was already updated.
    pub(crate) fn lookup(&mut self, line: u64, cycle: u64) -> Lookup {
        self.stats.accesses += 1;
        self.purge_mshrs(cycle);

        // Secondary miss: completes with the in-flight primary; no new MSHR.
        if let Some(existing) = self.mshrs.iter().find(|m| m.line == line) {
            self.stats.misses += 1;
            return Lookup {
                hit: false,
                merged: true,
                start: cycle,
                issue: existing.complete,
            };
        }

        if self.probe(line) {
            let conflict = if self.config.bank_conflicts {
                (line ^ (line >> 3) ^ (line >> 7)) & 1
            } else {
                0
            };
            return Lookup {
                hit: true,
                merged: false,
                start: cycle,
                issue: cycle + self.config.hit_latency + conflict,
            };
        }

        self.stats.misses += 1;
        let mut start = cycle;
        if self.mshrs.len() >= self.config.mshrs as usize {
            let earliest = self
                .mshrs
                .iter()
                .map(|m| m.complete)
                .min()
                .expect("mshrs non-empty when full");
            self.stats.mshr_stall_cycles += earliest.saturating_sub(cycle);
            start = earliest;
            self.mshrs.retain(|m| m.complete > start);
        }
        Lookup {
            hit: false,
            merged: false,
            start,
            issue: start + self.config.hit_latency,
        }
    }

    /// Registers a primary miss for `line` completing at `complete`, filling
    /// the line.
    pub(crate) fn register_miss(&mut self, line: u64, complete: u64) {
        if self.mshrs.iter().all(|m| m.line != line) {
            self.mshrs.push(Mshr { line, complete });
        }
        self.fill(line);
    }

    /// Registers a prefetch fill for `line` completing at `complete`.
    /// Dropped silently if the line is resident, already in flight, or no
    /// MSHR is free (prefetches never stall demand traffic).
    pub(crate) fn register_prefetch(&mut self, line: u64, complete: u64) {
        if self.mshrs.iter().any(|m| m.line == line) {
            return;
        }
        let base = self.set_index(line);
        if self.sets[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == line)
        {
            return;
        }
        if self.mshrs.len() >= self.config.mshrs as usize {
            return;
        }
        self.stats.prefetches += 1;
        self.mshrs.push(Mshr { line, complete });
        self.fill(line);
    }

    /// Serializes the full microarchitectural state (tag array, MSHRs, LRU
    /// clock, counters) for a checkpoint. The configuration itself is not
    /// written — restore re-derives geometry from the live config and rejects
    /// snapshots that do not match it.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_len(out, self.sets.len());
        for w in &self.sets {
            snap::put_u64(out, w.tag);
            snap::put_bool(out, w.valid);
            snap::put_u64(out, w.stamp);
        }
        snap::put_len(out, self.mshrs.len());
        for m in &self.mshrs {
            snap::put_u64(out, m.line);
            snap::put_u64(out, m.complete);
        }
        snap::put_u64(out, self.stamp);
        snap::put_u64(out, self.stats.accesses);
        snap::put_u64(out, self.stats.misses);
        snap::put_u64(out, self.stats.prefetches);
        snap::put_u64(out, self.stats.mshr_stall_cycles);
    }

    /// Restores a cache captured by [`Cache::snapshot_into`] against `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is truncated, or when the
    /// recorded geometry (way count, MSHR count) disagrees with `config` —
    /// a checkpoint taken under a different configuration must not restore.
    pub fn restore(config: CacheConfig, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let num_sets = config.num_sets();
        if num_sets == 0 {
            return Err(SnapError::Malformed("cache config has no sets"));
        }
        let ways = config.ways as usize;
        let n_ways = r.len_of(17)?;
        if n_ways != (num_sets as usize) * ways {
            return Err(SnapError::Malformed("cache tag-array size mismatch"));
        }
        let mut sets = Vec::with_capacity(n_ways);
        for _ in 0..n_ways {
            sets.push(Way {
                tag: r.u64()?,
                valid: r.bool()?,
                stamp: r.u64()?,
            });
        }
        let n_mshrs = r.len_of(16)?;
        if n_mshrs > config.mshrs as usize {
            return Err(SnapError::Malformed("more MSHRs than configured"));
        }
        let mut mshrs = Vec::with_capacity(config.mshrs as usize);
        for _ in 0..n_mshrs {
            mshrs.push(Mshr {
                line: r.u64()?,
                complete: r.u64()?,
            });
        }
        let stamp = r.u64()?;
        let stats = CacheStats {
            accesses: r.u64()?,
            misses: r.u64()?,
            prefetches: r.u64()?,
            mshr_stall_cycles: r.u64()?,
        };
        Ok(Cache {
            sets,
            num_sets,
            ways,
            mshrs,
            stamp,
            stats,
            config,
            last_line: u64::MAX,
            last_way: 0,
        })
    }

    /// Whether `line` is currently resident (test/diagnostic helper; does not
    /// update LRU state or stats).
    #[must_use]
    pub fn contains(&self, line_addr: u64) -> bool {
        let line = line_addr / LINE_BYTES;
        let base = self.set_index(line);
        self.sets[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            name: "T".into(),
            size_bytes: 4 * 64, // 2 sets x 2 ways
            ways: 2,
            hit_latency: 3,
            mshrs: 2,
            next_line_prefetch: false,
            bank_conflicts: false,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let l = c.lookup(5, 0);
        assert!(!l.hit);
        c.register_miss(5, 50);
        let l2 = c.lookup(5, 100);
        assert!(l2.hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.fill(0);
        c.fill(2);
        assert!(c.contains(0));
        c.fill(4); // evicts 0
        assert!(!c.contains(0));
        assert!(c.contains(2 * LINE_BYTES));
        assert!(c.contains(4 * LINE_BYTES));
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = tiny();
        c.fill(0);
        c.fill(2);
        // Touch 0, making 2 the LRU.
        assert!(c.lookup(0, 10).hit);
        c.fill(4);
        assert!(c.contains(0));
        assert!(!c.contains(2 * LINE_BYTES));
    }

    #[test]
    fn mshr_full_delays_access() {
        let mut c = tiny();
        // Two outstanding misses fill both MSHRs.
        assert!(!c.lookup(1, 0).hit);
        c.register_miss(1, 100);
        assert!(!c.lookup(3, 0).hit);
        c.register_miss(3, 120);
        // Third distinct miss must wait for the earliest (cycle 100).
        let l = c.lookup(5, 10);
        assert!(!l.hit);
        assert_eq!(l.start, 100);
        assert_eq!(c.stats().mshr_stall_cycles, 90);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut c = tiny();
        assert!(!c.lookup(1, 0).hit);
        c.register_miss(1, 100);
        // Evict line 1 so the next lookup misses again while its MSHR is
        // still outstanding (contrived, but exercises the merge path).
        c.fill(3);
        c.fill(5);
        let l = c.lookup(1, 10);
        assert!(!l.hit);
        assert_eq!(l.issue, 100, "secondary miss completes with the primary");
    }

    #[test]
    fn mshrs_free_after_completion() {
        let mut c = tiny();
        assert!(!c.lookup(1, 0).hit);
        c.register_miss(1, 100);
        assert!(!c.lookup(3, 0).hit);
        c.register_miss(3, 100);
        // After cycle 100 both MSHRs are free: no stall.
        let l = c.lookup(7, 200);
        assert_eq!(l.start, 200);
        assert_eq!(c.stats().mshr_stall_cycles, 0);
    }

    #[test]
    fn config_num_sets() {
        let cfg = CacheConfig {
            name: "L1D".into(),
            size_bytes: 32 * 1024,
            ways: 8,
            hit_latency: 3,
            mshrs: 8,
            next_line_prefetch: true,
            bank_conflicts: false,
        };
        assert_eq!(cfg.num_sets(), 64);
    }

    #[test]
    fn snapshot_roundtrips_warm_state() {
        let mut c = tiny();
        c.lookup(1, 0);
        c.register_miss(1, 100);
        c.lookup(3, 5);
        c.register_miss(3, 120);
        c.lookup(1, 50); // merges with the in-flight miss

        let mut buf = Vec::new();
        c.snapshot_into(&mut buf);
        let mut r = SnapReader::new(&buf);
        let mut restored = Cache::restore(c.config().clone(), &mut r).unwrap();
        assert!(r.is_empty());

        assert_eq!(restored.stats(), c.stats());
        // Identical behaviour after restore: same merge, same hit.
        assert_eq!(restored.lookup(3, 60), c.lookup(3, 60));
        assert_eq!(restored.lookup(1, 200), c.lookup(1, 200));
        assert!(restored.lookup(1, 201).hit);
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let c = tiny();
        let mut buf = Vec::new();
        c.snapshot_into(&mut buf);
        let mut other = c.config().clone();
        other.size_bytes *= 2;
        assert!(Cache::restore(other, &mut SnapReader::new(&buf)).is_err());
    }

    #[test]
    fn restore_rejects_truncation() {
        let mut c = tiny();
        c.lookup(1, 0);
        c.register_miss(1, 100);
        let mut buf = Vec::new();
        c.snapshot_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                Cache::restore(c.config().clone(), &mut SnapReader::new(&buf[..cut])).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.lookup(1, 0);
        c.register_miss(1, 10);
        c.lookup(1, 20);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
