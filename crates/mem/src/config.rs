//! Whole-memory-system configuration (Table 1 of the paper).

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use crate::tlb::TlbConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the full memory system.
///
/// The default reproduces Table 1 of the paper: 32 KB 8-way L1 I/D caches
/// (8 MSHRs, next-line prefetch from L2), 512 KB 8-way L2 with 12 MSHRs,
/// 4 MB 8-way LLC with 8 MSHRs, 32-entry fully-associative L1 TLBs, a
/// 512-entry L2 TLB, a hardware page-table walker, and DDR3 at 25.6 GB/s.
/// Latencies are expressed in 3.2 GHz core cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// L1 instruction TLB.
    pub itlb: TlbConfig,
    /// L1 data TLB.
    pub dtlb: TlbConfig,
    /// Shared L2 TLB.
    pub l2_tlb: TlbConfig,
    /// Page-table-walk latency in cycles.
    pub ptw_latency: u64,
    /// Main memory.
    pub dram: DramConfig,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1i: CacheConfig {
                name: "L1I".into(),
                size_bytes: 32 * 1024,
                ways: 8,
                hit_latency: 1,
                mshrs: 4,
                next_line_prefetch: true,
                bank_conflicts: false,
            },
            l1d: CacheConfig {
                name: "L1D".into(),
                size_bytes: 32 * 1024,
                ways: 8,
                hit_latency: 3,
                mshrs: 8,
                next_line_prefetch: true,
                bank_conflicts: true,
            },
            l2: CacheConfig {
                name: "L2".into(),
                size_bytes: 512 * 1024,
                ways: 8,
                hit_latency: 14,
                mshrs: 12,
                next_line_prefetch: false,
                bank_conflicts: false,
            },
            llc: CacheConfig {
                name: "LLC".into(),
                size_bytes: 4 * 1024 * 1024,
                ways: 8,
                hit_latency: 40,
                mshrs: 8,
                next_line_prefetch: false,
                bank_conflicts: false,
            },
            itlb: TlbConfig {
                entries: 32,
                hit_latency: 0,
            },
            dtlb: TlbConfig {
                entries: 32,
                hit_latency: 0,
            },
            l2_tlb: TlbConfig {
                entries: 512,
                hit_latency: 8,
            },
            ptw_latency: 80,
            dram: DramConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = MemConfig::default();
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.mshrs, 8);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.mshrs, 12);
        assert_eq!(c.llc.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.llc.mshrs, 8);
        assert_eq!(c.itlb.entries, 32);
        assert_eq!(c.dtlb.entries, 32);
        assert_eq!(c.l2_tlb.entries, 512);
        assert!(c.l1i.next_line_prefetch && c.l1d.next_line_prefetch);
    }
}
