//! Property-based tests for the memory hierarchy's timing invariants.

use proptest::prelude::*;
use tip_mem::{MemConfig, MemSystem};

proptest! {
    #[test]
    fn data_ready_never_precedes_the_access(
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..200),
        gaps in proptest::collection::vec(0u64..200, 1..200),
    ) {
        let mut mem = MemSystem::new(&MemConfig::default());
        let mut t = 0u64;
        for (addr, gap) in addrs.iter().zip(&gaps) {
            t += gap;
            let a = mem.access_data(*addr, t, addr % 3 == 0);
            prop_assert!(a.ready > t, "data cannot be ready at or before the access cycle");
            prop_assert!(a.ready <= t + 5_000, "latency must be bounded");
        }
    }

    #[test]
    fn repeated_access_is_never_slower_than_cold(
        addr in 0u64..(1 << 28),
    ) {
        let mut mem = MemSystem::new(&MemConfig::default());
        let cold = mem.access_data(addr, 0, false);
        let warm_start = cold.ready + 1_000;
        let warm = mem.access_data(addr, warm_start, false);
        prop_assert!(warm.ready - warm_start <= cold.ready, "warm access must not exceed cold latency");
    }

    #[test]
    fn ifetch_ready_is_monotone_in_request_time(addr in 0u64..(1 << 24)) {
        let mut a = MemSystem::new(&MemConfig::default());
        let mut b = MemSystem::new(&MemConfig::default());
        let early = a.access_inst(addr, 10);
        let late = b.access_inst(addr, 500);
        prop_assert!(late >= early, "asking later cannot yield data earlier");
    }

    #[test]
    fn stats_count_accesses_exactly(
        addrs in proptest::collection::vec(0u64..(1 << 20), 0..100),
    ) {
        let mut mem = MemSystem::new(&MemConfig::default());
        for (i, addr) in addrs.iter().enumerate() {
            mem.access_data(*addr, (i as u64) * 10, false);
        }
        prop_assert_eq!(mem.stats().l1d.accesses, addrs.len() as u64);
        prop_assert!(mem.stats().l1d.misses <= mem.stats().l1d.accesses);
        prop_assert_eq!(mem.stats().dtlb.accesses, addrs.len() as u64);
    }
}
