//! TIP's sampled, category-labelled stacks must agree with the Oracle's
//! exact per-function breakdowns — this is what lets a developer see *why*
//! a function is slow (Figure 13) from practical TIP samples alone.

use tip_core::{sampled_symbol_stacks, CycleCategory, ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_ooo::{Core, CoreConfig};
use tip_workloads::imagick_original;

#[test]
fn tip_sampled_stacks_track_oracle_stacks() {
    let program = imagick_original(600_000);
    let mut bank = ProfilerBank::new(&program, SamplerConfig::periodic(101), &[ProfilerId::Tip]);
    let mut core = Core::new(&program, CoreConfig::default(), 7);
    core.run(&mut bank, 200_000_000);
    let result = bank.finish();

    let map = program.symbol_map(Granularity::Function);
    let sampled = sampled_symbol_stacks(result.samples_of(ProfilerId::Tip), &map);
    assert_eq!(sampled.len(), program.functions().len());

    let total_sampled: f64 = sampled.iter().map(|s| s.total()).sum();
    for f in program.functions() {
        let sym = tip_isa::SymbolId(f.id().index() as u32);
        let oracle = result
            .oracle
            .symbol_stack(&program, Granularity::Function, sym);
        let est = &sampled[f.id().index()];
        let oracle_total = result.oracle.total_cycles() as f64;
        // Function share within ~3 points.
        let share_oracle = oracle.total() / oracle_total;
        let share_est = est.total() / total_sampled;
        assert!(
            (share_oracle - share_est).abs() < 0.03,
            "{}: share {:.3} vs sampled {:.3}",
            f.name(),
            share_oracle,
            share_est
        );
        // Category mix within each function within ~6 points.
        if oracle.total() > 0.05 * oracle_total {
            let o = oracle.normalized();
            let e = est.normalized();
            for (i, cat) in CycleCategory::ALL.iter().enumerate() {
                assert!(
                    (o[i] - e[i]).abs() < 0.06,
                    "{} {cat}: oracle {:.3} vs sampled {:.3}",
                    f.name(),
                    o[i],
                    e[i]
                );
            }
        }
    }

    // The CSR flush time specifically lands in floor/ceil's MiscFlush bin.
    let floor = program
        .functions()
        .iter()
        .find(|f| f.name() == "floor")
        .expect("floor exists");
    let est = &sampled[floor.id().index()];
    assert!(
        est.get(CycleCategory::MiscFlush) > 0.2 * est.total(),
        "sampled floor stack must show the flush component"
    );
}

#[test]
fn serialized_instructions_follow_the_papers_timeline() {
    // Section 2.2 "Putting-it-all-together": while the ROB drains ahead of a
    // fence, time goes to the preceding instructions at the head; the fence
    // itself is accounted Stalled while it is the only in-flight instruction
    // and Computing when it commits.
    use tip_isa::{BranchBehavior, Instr, MemBehavior, ProgramBuilder, Reg};
    let mut b = ProgramBuilder::named("fences");
    let main = b.function("main");
    let blk = b.block(main);
    b.push(
        blk,
        Instr::load(
            Some(Reg::int(1)),
            None,
            MemBehavior::RandomIn {
                base: 0x100_0000,
                footprint: 32 << 20,
            },
        ),
    );
    b.push(blk, Instr::fence());
    b.push(blk, Instr::int_alu(Some(Reg::int(2)), [None, None]));
    b.push(
        blk,
        Instr::branch(blk, BranchBehavior::Loop { taken_iters: 300 }),
    );
    let exit = b.block(main);
    b.push(exit, Instr::halt());
    let program = b.build().expect("valid");

    let mut bank = ProfilerBank::new(&program, SamplerConfig::periodic(101), &[ProfilerId::Tip]);
    let mut core = Core::new(&program, CoreConfig::default(), 7);
    core.run(&mut bank, 100_000_000);
    let result = bank.finish();

    // The missing load (idx 0) absorbs the drain-before-fence time as a
    // load stall; the fence (idx 1) accumulates only its own small stall.
    let per_instr = result.oracle.per_instr();
    assert!(
        per_instr[0] > 5.0 * per_instr[1],
        "load ({}) must dominate the fence ({})",
        per_instr[0],
        per_instr[1]
    );
    // Every instruction in the loop got *some* time (Oracle covers all
    // dynamic instructions).
    for (i, &w) in per_instr.iter().take(4).enumerate() {
        assert!(w > 0.0, "instruction {i} unaccounted");
    }
}
