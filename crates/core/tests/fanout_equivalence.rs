//! Hot-path equivalence: the sample-aware `ProfilerBank` fan-out
//! (precomputed next-sample cycle, `latch`/`on_sample` split) must be
//! bit-identical to the reference full fan-out (per-cycle schedule poll,
//! two-argument `observe`) on arbitrary programs and sampler configs.
//!
//! This is the correctness gate for the PR-4 fast path: any divergence —
//! a missed sample, a latch running on a sampled cycle, an RNG draw taken
//! at a different time — shows up as a sample/Oracle mismatch here.

use proptest::prelude::*;
use tip_core::{BankResult, ProfilerBank, ProfilerId, SamplerConfig};
use tip_ooo::{Core, CoreConfig, TraceSink};
use tip_workloads::{generate, SynthParams};

/// Runs `program` under every profiler twice — fast path vs reference
/// fan-out — and returns both results.
fn run_both(
    program: &tip_isa::Program,
    sampler: SamplerConfig,
    max_cycles: u64,
) -> (BankResult, BankResult) {
    let ids = ProfilerId::ALL;

    let mut fast = ProfilerBank::new(program, sampler, &ids);
    let mut core = Core::new(program, CoreConfig::default(), 3);
    core.run(&mut fast, max_cycles);

    // The reference path drives the bank through `on_cycle_reference` via a
    // forwarding sink, over the *same* deterministic simulation.
    struct Reference(ProfilerBank);
    impl TraceSink for Reference {
        fn on_cycle(&mut self, record: &tip_ooo::CycleRecord) {
            self.0.on_cycle_reference(record);
        }
    }
    let mut reference = Reference(ProfilerBank::new(program, sampler, &ids));
    let mut core = Core::new(program, CoreConfig::default(), 3);
    core.run(&mut reference, max_cycles);

    (fast.finish(), reference.0.finish())
}

fn assert_identical(fast: &BankResult, reference: &BankResult) {
    assert_eq!(fast.total_cycles, reference.total_cycles);
    assert_eq!(fast.oracle, reference.oracle, "Oracle accounting diverged");
    assert_eq!(fast.samples.len(), reference.samples.len());
    for ((fid, fs), (rid, rs)) in fast.samples.iter().zip(&reference.samples) {
        assert_eq!(fid, rid);
        assert_eq!(fs, rs, "{fid} samples diverged between fast and reference");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fast_path_matches_reference_fanout(
        program_seed in 0u64..1_000,
        dep_prob in 0.0f64..0.3,
        diamond_prob in 0.0f64..0.9,
        inner_iters in 4u32..32,
        interval in 1u64..400,
        random in proptest::bool::ANY,
        sampler_seed in 0u64..50,
    ) {
        let params = SynthParams {
            dep_prob,
            diamond_prob,
            inner_iters,
            dyn_instrs: 15_000,
            ..SynthParams::default()
        };
        let program = generate("fanout-eq", &params, program_seed);
        let sampler = if random {
            SamplerConfig::random(interval, sampler_seed)
        } else {
            SamplerConfig::periodic(interval)
        };
        let (fast, reference) = run_both(&program, sampler, 200_000);
        assert_identical(&fast, &reference);
    }
}

/// The deterministic smoke version: a real benchmark at test scale with the
/// harness' default interval, plus the interval=1 (every cycle sampled) and
/// huge-interval (sampling never fires) corners the proptest is unlikely to
/// pin exactly.
#[test]
fn fast_path_matches_reference_on_benchmark_corners() {
    let b = tip_workloads::benchmark("perlbench", tip_workloads::SuiteScale::Test);
    for sampler in [
        SamplerConfig::periodic(149),
        SamplerConfig::periodic(1),
        SamplerConfig::periodic(1 << 40),
        SamplerConfig::random(149, 7),
    ] {
        let (fast, reference) = run_both(&b.program, sampler, 400_000);
        assert_identical(&fast, &reference);
    }
}
