//! Property-based tests for profiles, the error metric, and the sampler.

use proptest::prelude::*;
use tip_core::{Profile, SampleSchedule, SamplerConfig};
use tip_isa::{Granularity, SymbolId};

fn arb_profile(n: usize) -> impl Strategy<Value = Profile> {
    proptest::collection::vec(0.0f64..100.0, n).prop_map(move |ws| {
        let mut p = Profile::zeroed(Granularity::Instruction, ws.len());
        for (i, w) in ws.iter().enumerate() {
            if *w > 0.0 {
                p.add(SymbolId(i as u32), *w);
            }
        }
        p
    })
}

proptest! {
    #[test]
    fn error_is_a_proper_metric_like_quantity(a in arb_profile(24), b in arb_profile(24)) {
        let e = a.error_vs(&b);
        prop_assert!((0.0..=1.0).contains(&e));
        // Symmetric for normalized overlap.
        prop_assert!((a.error_vs(&b) - b.error_vs(&a)).abs() < 1e-9);
        // Self-error is zero for non-empty profiles.
        if a.total() > 0.0 {
            prop_assert!(a.error_vs(&a) < 1e-12);
        }
    }

    #[test]
    fn error_is_scale_invariant(a in arb_profile(16), b in arb_profile(16), k in 0.1f64..50.0) {
        let mut scaled = Profile::zeroed(Granularity::Instruction, 16);
        for (i, w) in a.weights().iter().enumerate() {
            if *w > 0.0 {
                scaled.add(SymbolId(i as u32), w * k);
            }
        }
        prop_assert!((a.error_vs(&b) - scaled.error_vs(&b)).abs() < 1e-9);
    }

    #[test]
    fn error_equals_half_l1_distance(a in arb_profile(12), b in arb_profile(12)) {
        prop_assume!(a.total() > 0.0 && b.total() > 0.0);
        let l1: f64 = a
            .weights()
            .iter()
            .zip(b.weights())
            .map(|(x, y)| (x / a.total() - y / b.total()).abs())
            .sum();
        prop_assert!((a.error_vs(&b) - l1 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_places_exactly_one_sample_per_interval(
        interval in 1u64..500,
        random in proptest::bool::ANY,
        seed in 0u64..100,
        horizon_intervals in 1u64..50,
    ) {
        let config = if random {
            SamplerConfig::random(interval, seed)
        } else {
            SamplerConfig::periodic(interval)
        };
        let mut s = SampleSchedule::new(config);
        let horizon = interval * horizon_intervals;
        let picked: Vec<u64> = (0..horizon).filter(|&c| s.is_sample(c)).collect();
        prop_assert_eq!(picked.len() as u64, horizon_intervals);
        for (k, &c) in picked.iter().enumerate() {
            let lo = k as u64 * interval;
            prop_assert!((lo..lo + interval).contains(&c));
        }
        prop_assert_eq!(s.samples_taken(), horizon_intervals);
    }

    #[test]
    fn ranked_shares_sum_to_one(a in arb_profile(20)) {
        prop_assume!(a.total() > 0.0);
        let sum: f64 = a.ranked().iter().map(|(_, share)| share).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }
}
