//! Property-based tests for profiles, the error metric, the sampler, and
//! the streaming-delta monoid.

use proptest::prelude::*;
use tip_core::{Profile, ProfileDelta, SampleSchedule, SamplerConfig};
use tip_isa::{Granularity, SymbolId};

fn arb_profile(n: usize) -> impl Strategy<Value = Profile> {
    proptest::collection::vec(0.0f64..100.0, n).prop_map(move |ws| {
        let mut p = Profile::zeroed(Granularity::Instruction, ws.len());
        for (i, w) in ws.iter().enumerate() {
            if *w > 0.0 {
                p.add(SymbolId(i as u32), *w);
            }
        }
        p
    })
}

proptest! {
    #[test]
    fn error_is_a_proper_metric_like_quantity(a in arb_profile(24), b in arb_profile(24)) {
        let e = a.error_vs(&b);
        prop_assert!((0.0..=1.0).contains(&e));
        // Symmetric for normalized overlap.
        prop_assert!((a.error_vs(&b) - b.error_vs(&a)).abs() < 1e-9);
        // Self-error is zero for non-empty profiles.
        if a.total() > 0.0 {
            prop_assert!(a.error_vs(&a) < 1e-12);
        }
    }

    #[test]
    fn error_is_scale_invariant(a in arb_profile(16), b in arb_profile(16), k in 0.1f64..50.0) {
        let mut scaled = Profile::zeroed(Granularity::Instruction, 16);
        for (i, w) in a.weights().iter().enumerate() {
            if *w > 0.0 {
                scaled.add(SymbolId(i as u32), w * k);
            }
        }
        prop_assert!((a.error_vs(&b) - scaled.error_vs(&b)).abs() < 1e-9);
    }

    #[test]
    fn error_equals_half_l1_distance(a in arb_profile(12), b in arb_profile(12)) {
        prop_assume!(a.total() > 0.0 && b.total() > 0.0);
        let l1: f64 = a
            .weights()
            .iter()
            .zip(b.weights())
            .map(|(x, y)| (x / a.total() - y / b.total()).abs())
            .sum();
        prop_assert!((a.error_vs(&b) - l1 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_places_exactly_one_sample_per_interval(
        interval in 1u64..500,
        random in proptest::bool::ANY,
        seed in 0u64..100,
        horizon_intervals in 1u64..50,
    ) {
        let config = if random {
            SamplerConfig::random(interval, seed)
        } else {
            SamplerConfig::periodic(interval)
        };
        let mut s = SampleSchedule::new(config);
        let horizon = interval * horizon_intervals;
        let picked: Vec<u64> = (0..horizon).filter(|&c| s.is_sample(c)).collect();
        prop_assert_eq!(picked.len() as u64, horizon_intervals);
        for (k, &c) in picked.iter().enumerate() {
            let lo = k as u64 * interval;
            prop_assert!((lo..lo + interval).contains(&c));
        }
        prop_assert_eq!(s.samples_taken(), horizon_intervals);
    }

    #[test]
    fn ranked_shares_sum_to_one(a in arb_profile(20)) {
        prop_assume!(a.total() > 0.0);
        let sum: f64 = a.ranked().iter().map(|(_, share)| share).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranked_orders_ties_by_symbol_id(ws in proptest::collection::vec(0u64..4, 24)) {
        // Coarse integer weights force plenty of exact ties.
        let mut p = Profile::zeroed(Granularity::Function, ws.len());
        for (i, &w) in ws.iter().enumerate() {
            if w > 0 {
                p.add(SymbolId(i as u32), w as f64);
            }
        }
        let r = p.ranked();
        for pair in r.windows(2) {
            prop_assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 .0 < pair[1].0 .0),
                "ranking must be strictly (share desc, symbol id asc): {pair:?}"
            );
        }
    }

    #[test]
    fn profile_merge_is_a_monoid_on_integer_weights(
        ws_a in proptest::collection::vec(0u64..1_000, 16),
        ws_b in proptest::collection::vec(0u64..1_000, 16),
        ws_c in proptest::collection::vec(0u64..1_000, 16),
    ) {
        let build = |ws: &[u64]| {
            let mut p = Profile::zeroed(Granularity::Function, ws.len());
            for (i, &w) in ws.iter().enumerate() {
                if w > 0 {
                    p.add(SymbolId(i as u32), w as f64);
                }
            }
            p
        };
        let (a, b, c) = (build(&ws_a), build(&ws_b), build(&ws_c));

        // Zero identity.
        let mut z = a.clone();
        z.merge(&Profile::zeroed(Granularity::Function, 16));
        prop_assert_eq!(&z, &a);

        // Commutativity (exact: integer-valued f64 addition below 2^53).
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
    }

    #[test]
    fn delta_merge_is_a_monoid(
        ea in proptest::collection::vec((0u32..24, -5_000i64..5_000), 0..24),
        eb in proptest::collection::vec((0u32..24, -5_000i64..5_000), 0..24),
        ec in proptest::collection::vec((0u32..24, -5_000i64..5_000), 0..24),
    ) {
        let g = Granularity::Function;
        let a = ProfileDelta::from_entries(g, 24, ea);
        let b = ProfileDelta::from_entries(g, 24, eb);
        let c = ProfileDelta::from_entries(g, 24, ec);

        // Zero identity, both sides.
        let mut za = a.clone();
        za.merge(&ProfileDelta::zero(g, 24));
        prop_assert_eq!(&za, &a);
        let mut az = ProfileDelta::zero(g, 24);
        az.merge(&a);
        prop_assert_eq!(&az, &a);

        // Commutativity — i64 unit addition is exact, so this is equality
        // of canonical forms, not approximation.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
    }
}
