//! Streaming-delta equivalence: merging the deltas flushed at arbitrary
//! slice boundaries must reproduce the whole-run profile *exactly* — same
//! integer units, hence byte-identical rendered profiles — for every
//! profiler and the Oracle, on arbitrary programs and sampler configs.
//!
//! This is the correctness gate for the streaming observation path: deltas
//! are quantized cumulative-minus-last-reported integers, so the slice sum
//! telescopes to the final cumulative total no matter where the boundaries
//! fall or how the partial merges are ordered.

use proptest::prelude::*;
use tip_core::{Profile, ProfileDelta, ProfilerBank, ProfilerId, SamplerConfig, NUM_CATEGORIES};
use tip_isa::Granularity;
use tip_ooo::{Core, CoreConfig};
use tip_workloads::{generate, SynthParams};

/// All six practical profilers the figures compare, plus the ILP ablation —
/// i.e. everything `ProfilerId::ALL` carries.
const IDS: [ProfilerId; 7] = ProfilerId::ALL;

struct Flushes {
    /// Per-profiler slice deltas, indexed like `IDS`.
    per_profiler: Vec<Vec<ProfileDelta>>,
    oracle: Vec<ProfileDelta>,
    stacks: Vec<Vec<i64>>,
    /// The finished run's per-profiler profiles (the non-streaming truth).
    finished: Vec<Profile>,
    finished_oracle: Profile,
}

/// Runs `program` to completion, flushing deltas every `slice` cycles (and
/// once at the end), then finishing the bank the normal way.
fn run_sliced(program: &tip_isa::Program, sampler: SamplerConfig, slice: u64) -> Flushes {
    let map = program.symbol_map(Granularity::Function);
    let mut bank = ProfilerBank::new(program, sampler, &IDS);
    let mut core = Core::new(program, CoreConfig::default(), 3);

    let mut per_profiler: Vec<Vec<ProfileDelta>> = vec![Vec::new(); IDS.len()];
    let mut oracle = Vec::new();
    let mut stacks = Vec::new();
    let mut stop = slice;
    loop {
        let summary = core.run(&mut bank, stop);
        let deltas = bank.flush_deltas(&map);
        assert_eq!(deltas.seq, oracle.len() as u64 + 1, "flush seq counts up");
        for (i, (id, d)) in deltas.per_profiler.iter().enumerate() {
            assert_eq!(*id, IDS[i]);
            per_profiler[i].push(d.clone());
        }
        oracle.push(deltas.oracle);
        stacks.push(deltas.stack);
        if summary.exit.is_complete() {
            break;
        }
        assert!(stop < 10_000_000, "synthetic program failed to terminate");
        stop += slice;
    }

    let result = bank.finish();
    let finished = IDS
        .iter()
        .map(|&id| result.profile_of(program, id, Granularity::Function))
        .collect();
    Flushes {
        per_profiler,
        oracle,
        stacks,
        finished,
        finished_oracle: result.oracle.profile(program, Granularity::Function),
    }
}

/// Merges deltas left-to-right.
fn merge_all(deltas: &[ProfileDelta]) -> ProfileDelta {
    let mut acc = deltas[0].clone();
    for d in &deltas[1..] {
        acc.merge(d);
    }
    acc
}

fn assert_units_match(merged: &ProfileDelta, finished: &Profile, what: &str) {
    let want = ProfileDelta::quantize(finished);
    assert_eq!(
        merged.to_units(),
        want,
        "{what}: merged slice deltas must equal the quantized whole-run profile"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn slice_merge_reproduces_whole_run_exactly(
        program_seed in 0u64..1_000,
        dep_prob in 0.0f64..0.3,
        inner_iters in 4u32..24,
        interval in 3u64..300,
        random in proptest::bool::ANY,
        slice in 500u64..20_000,
        reversed in proptest::bool::ANY,
    ) {
        let params = SynthParams {
            dep_prob,
            inner_iters,
            dyn_instrs: 12_000,
            ..SynthParams::default()
        };
        let program = generate("streaming-eq", &params, program_seed);
        let sampler = if random {
            SamplerConfig::random(interval, 11)
        } else {
            SamplerConfig::periodic(interval)
        };
        let flushes = run_sliced(&program, sampler, slice);

        for (i, id) in IDS.iter().enumerate() {
            // Merge order must not matter (commutativity in practice).
            let mut deltas = flushes.per_profiler[i].clone();
            if reversed {
                deltas.reverse();
            }
            let merged = merge_all(&deltas);
            assert_units_match(&merged, &flushes.finished[i], &id.to_string());
            // And the rendered profile is bit-reproducible from the units.
            prop_assert_eq!(merged.to_profile(), merged.clone().to_profile());
        }

        let mut oracle_deltas = flushes.oracle.clone();
        if reversed {
            oracle_deltas.reverse();
        }
        let merged_oracle = merge_all(&oracle_deltas);
        assert_units_match(&merged_oracle, &flushes.finished_oracle, "Oracle");

        // The cycle-stack deltas telescope the same way.
        let mut stack_sum = [0i64; NUM_CATEGORIES];
        for stack in &flushes.stacks {
            prop_assert_eq!(stack.len(), NUM_CATEGORIES);
            for (acc, &d) in stack_sum.iter_mut().zip(stack) {
                *acc += d;
            }
        }
        let direct: i64 = stack_sum.iter().sum();
        // Total stack units ≈ total attributed cycles × 840; exactness of
        // the per-category split is what matters, checked via telescoping:
        // the sum of deltas IS the final cumulative value by construction,
        // and a second full-flush after the end must add nothing.
        prop_assert!(direct >= 0);
    }
}

/// Deterministic corner: one flush after the run ends equals the merged
/// slice deltas, and flushing twice in a row adds nothing.
#[test]
fn final_flush_is_idempotent() {
    let b = tip_workloads::benchmark("exchange2", tip_workloads::SuiteScale::Test);
    let map = b.program.symbol_map(Granularity::Function);
    let sampler = SamplerConfig::periodic(149);

    // Whole run, single flush.
    let mut bank = ProfilerBank::new(&b.program, sampler, &IDS);
    let mut core = Core::new(&b.program, CoreConfig::default(), 3);
    core.run(&mut bank, 10_000_000);
    let first = bank.flush_deltas(&map);
    let second = bank.flush_deltas(&map);
    assert_eq!(second.seq, first.seq + 1);
    for (id, d) in &second.per_profiler {
        assert!(d.is_zero(), "{id}: nothing ran between flushes");
    }
    assert!(second.oracle.is_zero());
    assert!(second.stack.iter().all(|&u| u == 0));

    // Sliced run over the same simulation.
    let mut bank2 = ProfilerBank::new(&b.program, sampler, &IDS);
    let mut core2 = Core::new(&b.program, CoreConfig::default(), 3);
    let mut merged: Option<Vec<ProfileDelta>> = None;
    let mut stop = 3_000;
    loop {
        let summary = core2.run(&mut bank2, stop);
        let deltas = bank2.flush_deltas(&map);
        merged = Some(match merged {
            None => deltas.per_profiler.iter().map(|(_, d)| d.clone()).collect(),
            Some(mut acc) => {
                for (a, (_, d)) in acc.iter_mut().zip(&deltas.per_profiler) {
                    a.merge(d);
                }
                acc
            }
        });
        if summary.exit.is_complete() {
            break;
        }
        stop += 3_000;
    }
    let merged = merged.expect("at least one flush");
    for (i, (_, whole)) in first.per_profiler.iter().enumerate() {
        assert_eq!(
            merged[i].to_units(),
            whole.to_units(),
            "{}: sliced merge != whole-run flush",
            IDS[i]
        );
    }
}
