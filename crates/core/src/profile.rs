//! Performance profiles and the profile-error metric.
//!
//! A [`Profile`] attributes execution time (cycles) to symbols at one
//! granularity. The error metric follows Section 4 of the paper: relate the
//! cycles a practical profiler attributes to the *correct* symbols (as
//! determined by the Oracle) to total cycles:
//! `e = (c_total - c_correct) / c_total`. With both profiles normalized,
//! `c_correct/c_total` is the overlap `Σ_s min(p(s), o(s))`, so the error is
//! one minus the profile overlap — 0% when the practical profile matches the
//! Oracle exactly, 100% when every cycle lands on the wrong symbol.

use crate::sample::Sample;
use serde::{Deserialize, Serialize};
use tip_isa::{Granularity, Program, SymbolId, SymbolMap};

/// A performance profile: cycles attributed per symbol at one granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    granularity: Granularity,
    weights: Vec<f64>,
    total: f64,
}

impl Profile {
    /// An all-zero profile with `num_symbols` symbols.
    #[must_use]
    pub fn zeroed(granularity: Granularity, num_symbols: usize) -> Self {
        Profile {
            granularity,
            weights: vec![0.0; num_symbols],
            total: 0.0,
        }
    }

    /// Builds a profile from per-instruction cycle counts (the Oracle's
    /// native output) at the map's granularity.
    #[must_use]
    pub fn from_instr_cycles(per_instr: &[f64], map: &SymbolMap) -> Self {
        let mut p = Profile::zeroed(map.granularity(), map.num_symbols());
        for (i, &cycles) in per_instr.iter().enumerate() {
            if cycles > 0.0 {
                p.add(map.symbol(tip_isa::InstrIdx::new(i as u32)), cycles);
            }
        }
        p
    }

    /// Builds a profile from resolved samples. Each sample stands for the
    /// time period since the previous sample (its `weight_cycles`), split
    /// across its attributed instructions.
    #[must_use]
    pub fn from_samples(samples: &[Sample], map: &SymbolMap) -> Self {
        let mut p = Profile::zeroed(map.granularity(), map.num_symbols());
        for s in samples {
            for &(idx, frac) in &s.targets {
                p.add(map.symbol(idx), s.weight_cycles * frac);
            }
        }
        p
    }

    /// Adds `cycles` to `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn add(&mut self, symbol: SymbolId, cycles: f64) {
        self.weights[symbol.0 as usize] += cycles;
        self.total += cycles;
    }

    /// The granularity this profile is expressed at.
    #[must_use]
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Total attributed cycles.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The raw attributed cycles per symbol.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fraction of total time attributed to `symbol` (0 if the profile is
    /// empty).
    #[must_use]
    pub fn share(&self, symbol: SymbolId) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.weights[symbol.0 as usize] / self.total
        }
    }

    /// Symbols ordered by descending attributed time, with their shares.
    /// Equal-weight symbols order by ascending symbol id, so the ranking is
    /// deterministic regardless of how the profile was accumulated.
    #[must_use]
    pub fn ranked(&self) -> Vec<(SymbolId, f64)> {
        let mut v: Vec<(SymbolId, f64)> = self
            .weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, _)| (SymbolId(i as u32), self.share(SymbolId(i as u32))))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("shares are finite")
                .then_with(|| a.0 .0.cmp(&b.0 .0))
        });
        v
    }

    /// Merges `other` into `self` element-wise: the profile monoid's binary
    /// operation ([`Profile::zeroed`] is the identity). With integer-valued
    /// weights below 2^53, the merge is exact and therefore commutative and
    /// associative; fractional weights are subject to the usual f64
    /// rounding, which is why the streaming path composes [`ProfileDelta`]s
    /// (integer units) instead of merged `Profile`s.
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different granularities or symbol counts.
    pub fn merge(&mut self, other: &Profile) {
        assert_eq!(self.granularity, other.granularity, "granularity mismatch");
        assert_eq!(
            self.weights.len(),
            other.weights.len(),
            "symbol-count mismatch"
        );
        for (w, &o) in self.weights.iter_mut().zip(&other.weights) {
            *w += o;
        }
        self.total += other.total;
    }

    /// The profile error of `self` measured against the golden `oracle`
    /// profile: `e = 1 - Σ_s min(p(s), o(s))` over normalized profiles.
    ///
    /// Returns 1.0 (100% error) if either profile is empty.
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different granularities or symbol counts.
    #[must_use]
    pub fn error_vs(&self, oracle: &Profile) -> f64 {
        assert_eq!(self.granularity, oracle.granularity, "granularity mismatch");
        assert_eq!(
            self.weights.len(),
            oracle.weights.len(),
            "symbol-count mismatch"
        );
        if self.total <= 0.0 || oracle.total <= 0.0 {
            return 1.0;
        }
        let overlap: f64 = self
            .weights
            .iter()
            .zip(&oracle.weights)
            .map(|(&p, &o)| (p / self.total).min(o / oracle.total))
            .sum();
        (1.0 - overlap).clamp(0.0, 1.0)
    }

    /// A copy of the profile keeping only symbols for which `keep` returns
    /// true (everything else is dropped and the total shrinks accordingly).
    ///
    /// The paper's methodology only includes samples that hit application
    /// code, excluding OS/handler time (Section 4); filter with a predicate
    /// over function symbols to do the same:
    ///
    /// ```
    /// # use tip_core::Profile;
    /// # use tip_isa::{Granularity, SymbolId};
    /// let mut p = Profile::zeroed(Granularity::Function, 3);
    /// p.add(SymbolId(0), 10.0); // application code
    /// p.add(SymbolId(2), 5.0);  // kernel handler
    /// let app_only = p.retain(|sym| sym.0 != 2);
    /// assert_eq!(app_only.total(), 10.0);
    /// ```
    #[must_use]
    pub fn retain(&self, keep: impl Fn(SymbolId) -> bool) -> Profile {
        let mut out = Profile::zeroed(self.granularity, self.weights.len());
        for (i, &w) in self.weights.iter().enumerate() {
            let sym = SymbolId(i as u32);
            if w > 0.0 && keep(sym) {
                out.add(sym, w);
            }
        }
        out
    }

    /// Renders the top `n` symbols with names from `program` (for reports).
    #[must_use]
    pub fn top_table(&self, program: &Program, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (sym, share) in self.ranked().into_iter().take(n) {
            let _ = writeln!(
                out,
                "{:>7.3}%  {}",
                share * 100.0,
                program.symbol_name(self.granularity, sym)
            );
        }
        out
    }
}

/// Fixed-point scale for [`ProfileDelta`] entries: units per cycle.
///
/// 840 is lcm(1..=8), so every 1/n split a profiler can produce (n bounded
/// by the commit width, [`tip_ooo::MAX_COMMIT`] = 8) lands on a whole number
/// of units. Quantizing cumulative weights to integer units makes delta
/// streams telescope *exactly*: the sum of slice deltas equals the
/// whole-run delta in i64 arithmetic, independent of flush boundaries and
/// f64 rounding — which f64 deltas cannot guarantee (float addition is not
/// associative).
pub const UNITS_PER_CYCLE: i64 = 840;

/// A mergeable profile increment: per-symbol cycle deltas since the last
/// flush, in integer units of 1/[`UNITS_PER_CYCLE`] cycle.
///
/// Entries are canonical — sorted by symbol id, no duplicates, no zeros —
/// so equal deltas compare equal and serialize identically. Entries may be
/// negative: a late-resolving sample (TIP's open Front-end samples) splits
/// an earlier inter-sample gap and *shrinks* previously reported weights.
///
/// `ProfileDelta` forms a commutative monoid under [`merge`](Self::merge)
/// with [`zero`](Self::zero) as identity, which is what lets slices,
/// workers, and fleet daemons aggregate in any order and still reproduce
/// the whole-run profile bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileDelta {
    granularity: Granularity,
    num_symbols: u32,
    entries: Vec<(u32, i64)>,
}

impl ProfileDelta {
    /// The identity delta: no increments.
    #[must_use]
    pub fn zero(granularity: Granularity, num_symbols: u32) -> Self {
        ProfileDelta {
            granularity,
            num_symbols,
            entries: Vec::new(),
        }
    }

    /// Builds a canonical delta from arbitrary `(symbol, units)` pairs:
    /// duplicates are summed, zeros dropped, entries sorted by symbol id.
    /// Out-of-range symbols are clamped out (a wire decoder feeds this, and
    /// hostile input must degrade, not panic).
    #[must_use]
    pub fn from_entries(
        granularity: Granularity,
        num_symbols: u32,
        entries: impl IntoIterator<Item = (u32, i64)>,
    ) -> Self {
        let mut delta = ProfileDelta::zero(granularity, num_symbols);
        for (sym, units) in entries {
            if sym < num_symbols {
                delta.entries.push((sym, units));
            }
        }
        delta.canonicalize();
        delta
    }

    fn canonicalize(&mut self) {
        self.entries.sort_by_key(|&(sym, _)| sym);
        let mut out: Vec<(u32, i64)> = Vec::with_capacity(self.entries.len());
        for &(sym, units) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == sym => last.1 += units,
                _ => out.push((sym, units)),
            }
        }
        out.retain(|&(_, units)| units != 0);
        self.entries = out;
    }

    /// The granularity the delta is expressed at.
    #[must_use]
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of symbols in the profile space this delta indexes into.
    #[must_use]
    pub fn num_symbols(&self) -> u32 {
        self.num_symbols
    }

    /// The canonical `(symbol, units)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(u32, i64)] {
        &self.entries
    }

    /// Whether this is the identity delta.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// Quantizes a profile's per-symbol weights to integer units.
    #[must_use]
    pub fn quantize(profile: &Profile) -> Vec<i64> {
        profile
            .weights()
            .iter()
            .map(|&w| (w * UNITS_PER_CYCLE as f64).round() as i64)
            .collect()
    }

    /// The delta from `last_units` (dense, zero-padded) to `current_units`.
    #[must_use]
    pub fn between(
        granularity: Granularity,
        last_units: &[i64],
        current_units: &[i64],
    ) -> ProfileDelta {
        let mut delta = ProfileDelta::zero(granularity, current_units.len() as u32);
        for (i, &cur) in current_units.iter().enumerate() {
            let prev = last_units.get(i).copied().unwrap_or(0);
            if cur != prev {
                delta.entries.push((i as u32, cur - prev));
            }
        }
        delta
    }

    /// Merges `other` into `self`: exact i64 addition per symbol, so the
    /// operation is commutative and associative by construction.
    ///
    /// # Panics
    ///
    /// Panics if the deltas have different granularities or symbol counts.
    pub fn merge(&mut self, other: &ProfileDelta) {
        assert_eq!(self.granularity, other.granularity, "granularity mismatch");
        assert_eq!(self.num_symbols, other.num_symbols, "symbol-count mismatch");
        self.entries.extend_from_slice(&other.entries);
        self.canonicalize();
    }

    /// Accumulated units per symbol, dense (one slot per symbol).
    #[must_use]
    pub fn to_units(&self) -> Vec<i64> {
        let mut units = vec![0i64; self.num_symbols as usize];
        for &(sym, u) in &self.entries {
            units[sym as usize] += u;
        }
        units
    }

    /// Materializes the delta as a [`Profile`] (units scaled back to
    /// cycles). Deterministic for a given delta, so two aggregates holding
    /// equal unit totals render byte-identical profiles.
    #[must_use]
    pub fn to_profile(&self) -> Profile {
        let mut p = Profile::zeroed(self.granularity, self.num_symbols as usize);
        for &(sym, units) in &self.entries {
            p.add(SymbolId(sym), units as f64 / UNITS_PER_CYCLE as f64);
        }
        p
    }
}

/// Per-profiler streaming state: remembers the unit totals last reported so
/// each flush emits only the increment.
///
/// The tracker is deliberately *not* checkpointed: after a restore it
/// resets and the next flush re-reports the full cumulative profile from
/// zero. Aggregators treat a flush sequence restarting at 1 as a slot
/// reset, so crash/resume never double-counts.
#[derive(Debug, Clone, Default)]
pub struct DeltaTracker {
    last_units: Vec<i64>,
    /// Samples folded in so far, stable-sorted by trigger cycle, with
    /// `weight_cycles` current for the whole vector.
    sorted: Vec<Sample>,
    /// How many entries of the caller's append-only `resolved` slice have
    /// been merged into `sorted`.
    seen: usize,
    /// Per-symbol weight sums over `sorted[..stable]` — the additions
    /// replayed so far, in sorted order, so resuming from here is
    /// bit-identical to a from-scratch accumulation.
    prefix: Vec<f64>,
    /// Accumulation checkpoint into `sorted`. Everything at or past this
    /// index may still be perturbed by late out-of-trigger-order
    /// resolutions, so it is re-summed on every flush; the checkpoint only
    /// advances to the earliest cycle a future insertion could precede.
    stable: usize,
}

impl DeltaTracker {
    /// A fresh tracker that has reported nothing.
    #[must_use]
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// Emits the delta from the last flush to `current`, then remembers
    /// `current` as the new watermark.
    pub fn flush_profile(&mut self, current: &Profile) -> ProfileDelta {
        let units = ProfileDelta::quantize(current);
        let delta = ProfileDelta::between(current.granularity(), &self.last_units, &units);
        self.last_units = units;
        delta
    }

    /// [`Self::flush_profile`] over resolved samples: computes the full
    /// cumulative profile (sorting by cycle and weighting each sample by
    /// its inter-sample gap, exactly as [`crate::ProfilerBank`] does at the
    /// end of a run) and diffs it against the watermark.
    ///
    /// Late out-of-trigger-order resolutions (TIP's Front-end samples)
    /// retroactively re-split earlier gaps, so increments cannot simply be
    /// carried forward. Instead the tracker keeps `resolved` merged into a
    /// sorted cache and re-derives weights and sums only from the first
    /// position this flush's insertions could have perturbed. The sequence
    /// of floating-point additions is identical to a from-scratch
    /// recomputation — same samples, same sorted order — so the quantized
    /// units stay bit-identical to the end-of-run profile while the
    /// per-flush cost drops from O(total) to O(new + out-of-order window).
    pub fn flush_samples(&mut self, resolved: &[Sample], map: &SymbolMap) -> ProfileDelta {
        if resolved.len() < self.seen {
            // The caller's sample vector shrank (drained or rebuilt): the
            // cache describes samples that no longer exist, so start over.
            self.sorted.clear();
            self.seen = 0;
            self.prefix.clear();
            self.stable = 0;
        }
        if self.prefix.len() != map.num_symbols() {
            self.prefix = vec![0.0; map.num_symbols()];
            self.stable = 0;
        }
        let mut new: Vec<Sample> = resolved[self.seen..].to_vec();
        self.seen = resolved.len();
        new.sort_by_key(|s| s.cycle);

        // First sorted position this flush changes: insertions all land at
        // or after it (ties go old-first, matching a stable sort of the
        // concatenation), and every weight before it is untouched because a
        // sample's weight depends only on its predecessor's cycle.
        let first = match new.first() {
            Some(s) => self.sorted.partition_point(|prev| prev.cycle <= s.cycle),
            None => self.sorted.len(),
        };
        if !new.is_empty() {
            let tail = self.sorted.split_off(first);
            let mut old = tail.into_iter().peekable();
            let mut add = new.into_iter().peekable();
            while let (Some(o), Some(n)) = (old.peek(), add.peek()) {
                if o.cycle <= n.cycle {
                    self.sorted.push(old.next().expect("peeked"));
                } else {
                    self.sorted.push(add.next().expect("peeked"));
                }
            }
            self.sorted.extend(old);
            self.sorted.extend(add);
            let mut prev = if first == 0 {
                0
            } else {
                self.sorted[first - 1].cycle
            };
            for s in &mut self.sorted[first..] {
                s.weight_cycles = (s.cycle - prev) as f64 + if prev == 0 { 1.0 } else { 0.0 };
                prev = s.cycle;
            }
        }

        // Replay additions: advance the durable prefix up to this flush's
        // first perturbed position (rewinding entirely if an insertion
        // landed before the checkpoint), then sum the still-volatile tail
        // onto a scratch copy.
        if first < self.stable {
            self.prefix.fill(0.0);
            self.stable = 0;
        }
        for s in &self.sorted[self.stable..first] {
            for &(idx, frac) in &s.targets {
                self.prefix[map.symbol(idx).0 as usize] += s.weight_cycles * frac;
            }
        }
        self.stable = first;
        let mut weights = self.prefix.clone();
        for s in &self.sorted[first..] {
            for &(idx, frac) in &s.targets {
                weights[map.symbol(idx).0 as usize] += s.weight_cycles * frac;
            }
        }

        #[allow(clippy::cast_possible_truncation)]
        let units: Vec<i64> = weights
            .iter()
            .map(|&w| (w * UNITS_PER_CYCLE as f64).round() as i64)
            .collect();
        let delta = ProfileDelta::between(map.granularity(), &self.last_units, &units);
        self.last_units = units;
        delta
    }

    /// Forgets everything reported so far; the next flush re-reports the
    /// full cumulative profile.
    pub fn reset(&mut self) {
        self.last_units.clear();
        self.sorted.clear();
        self.seen = 0;
        self.prefix.clear();
        self.stable = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::InstrIdx;

    fn p(g: Granularity, w: &[f64]) -> Profile {
        let mut prof = Profile::zeroed(g, w.len());
        for (i, &x) in w.iter().enumerate() {
            if x != 0.0 {
                prof.add(SymbolId(i as u32), x);
            }
        }
        prof
    }

    #[test]
    fn identical_profiles_have_zero_error() {
        let a = p(Granularity::Function, &[3.0, 1.0, 6.0]);
        assert!(a.error_vs(&a) < 1e-12);
    }

    #[test]
    fn disjoint_profiles_have_full_error() {
        let a = p(Granularity::Function, &[1.0, 0.0]);
        let b = p(Granularity::Function, &[0.0, 1.0]);
        assert!((a.error_vs(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_is_half_l1_distance() {
        // p = (0.75, 0.25), o = (0.25, 0.75): overlap = 0.5, error = 0.5.
        let a = p(Granularity::BasicBlock, &[3.0, 1.0]);
        let b = p(Granularity::BasicBlock, &[1.0, 3.0]);
        assert!((a.error_vs(&b) - 0.5).abs() < 1e-12);
        // Error is symmetric for normalized profiles.
        assert!((b.error_vs(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_does_not_change_error() {
        let a = p(Granularity::Instruction, &[2.0, 2.0, 4.0]);
        let b = p(Granularity::Instruction, &[20.0, 20.0, 40.0]);
        assert!(a.error_vs(&b) < 1e-12);
    }

    #[test]
    fn empty_profile_is_all_error() {
        let a = p(Granularity::Function, &[0.0, 0.0]);
        let b = p(Granularity::Function, &[1.0, 0.0]);
        assert_eq!(a.error_vs(&b), 1.0);
        assert_eq!(b.error_vs(&a), 1.0);
    }

    #[test]
    fn from_samples_weights_by_interval() {
        use crate::sample::Sample;
        let mut builder = tip_isa::ProgramBuilder::new();
        let f = builder.function("main");
        let blk = builder.block(f);
        for _ in 0..3 {
            builder.push(blk, tip_isa::Instr::nop());
        }
        builder.push(blk, tip_isa::Instr::halt());
        let program = builder.build().expect("valid");
        let map = program.symbol_map(Granularity::Instruction);

        let samples = vec![
            Sample {
                cycle: 100,
                weight_cycles: 100.0,
                targets: vec![(InstrIdx::new(0), 1.0)],
                category: None,
            },
            Sample {
                cycle: 200,
                weight_cycles: 100.0,
                targets: vec![(InstrIdx::new(1), 0.5), (InstrIdx::new(2), 0.5)],
                category: None,
            },
        ];
        let prof = Profile::from_samples(&samples, &map);
        assert!((prof.total() - 200.0).abs() < 1e-9);
        assert!((prof.share(SymbolId(0)) - 0.5).abs() < 1e-12);
        assert!((prof.share(SymbolId(1)) - 0.25).abs() < 1e-12);
        assert!((prof.share(SymbolId(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn retain_drops_filtered_symbols_and_rescales_shares() {
        let prof = p(Granularity::Function, &[6.0, 0.0, 3.0, 1.0]);
        let kept = prof.retain(|sym| sym.0 != 3);
        assert!((kept.total() - 9.0).abs() < 1e-12);
        assert!((kept.share(SymbolId(0)) - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(kept.weights()[3], 0.0);
        // Error against a same-filtered oracle is well-defined.
        assert!(kept.error_vs(&kept) < 1e-12);
    }

    #[test]
    fn ranked_is_descending() {
        let a = p(Granularity::Function, &[1.0, 5.0, 3.0]);
        let r = a.ranked();
        assert_eq!(r[0].0, SymbolId(1));
        assert_eq!(r[1].0, SymbolId(2));
        assert_eq!(r[2].0, SymbolId(0));
    }

    #[test]
    fn ranked_breaks_weight_ties_by_symbol_id() {
        // Regression: equal-weight symbols used to keep sort_by's
        // unspecified relative order; they must order by ascending id.
        let a = p(Granularity::Function, &[2.0, 5.0, 2.0, 5.0, 2.0]);
        let r = a.ranked();
        let ids: Vec<u32> = r.iter().map(|(s, _)| s.0).collect();
        assert_eq!(ids, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn merge_adds_elementwise_and_zero_is_identity() {
        let mut a = p(Granularity::Function, &[1.0, 0.0, 2.0]);
        let b = p(Granularity::Function, &[0.5, 3.0, 0.0]);
        a.merge(&b);
        assert_eq!(a.weights(), &[1.5, 3.0, 2.0]);
        assert!((a.total() - 6.5).abs() < 1e-12);
        let before = a.clone();
        a.merge(&Profile::zeroed(Granularity::Function, 3));
        assert_eq!(a, before);
    }

    #[test]
    fn delta_entries_are_canonical() {
        let d = ProfileDelta::from_entries(
            Granularity::Function,
            4,
            vec![(3, 5), (1, -2), (3, -5), (0, 7), (9, 100)],
        );
        // Sorted, duplicate 3 summed to zero and dropped, out-of-range 9
        // dropped.
        assert_eq!(d.entries(), &[(0, 7), (1, -2)]);
    }

    #[test]
    fn delta_merge_telescopes_exactly() {
        let g = Granularity::Function;
        let a = ProfileDelta::from_entries(g, 3, vec![(0, 840), (2, 420)]);
        let b = ProfileDelta::from_entries(g, 3, vec![(0, -840), (1, 7)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.entries(), &[(1, 7), (2, 420)]);
        let prof = ab.to_profile();
        assert!((prof.weights()[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tracker_flushes_increments_and_resets_to_full() {
        let g = Granularity::Function;
        let mut tracker = DeltaTracker::new();
        let d1 = tracker.flush_profile(&p(g, &[1.0, 0.0]));
        assert_eq!(d1.entries(), &[(0, 840)]);
        let d2 = tracker.flush_profile(&p(g, &[1.0, 2.0]));
        assert_eq!(d2.entries(), &[(1, 1680)]);
        tracker.reset();
        let d3 = tracker.flush_profile(&p(g, &[1.0, 2.0]));
        let mut sum = d1;
        sum.merge(&d2);
        assert_eq!(sum, d3, "post-reset flush re-reports the cumulative total");
    }
}
