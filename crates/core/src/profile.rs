//! Performance profiles and the profile-error metric.
//!
//! A [`Profile`] attributes execution time (cycles) to symbols at one
//! granularity. The error metric follows Section 4 of the paper: relate the
//! cycles a practical profiler attributes to the *correct* symbols (as
//! determined by the Oracle) to total cycles:
//! `e = (c_total - c_correct) / c_total`. With both profiles normalized,
//! `c_correct/c_total` is the overlap `Σ_s min(p(s), o(s))`, so the error is
//! one minus the profile overlap — 0% when the practical profile matches the
//! Oracle exactly, 100% when every cycle lands on the wrong symbol.

use crate::sample::Sample;
use serde::{Deserialize, Serialize};
use tip_isa::{Granularity, Program, SymbolId, SymbolMap};

/// A performance profile: cycles attributed per symbol at one granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    granularity: Granularity,
    weights: Vec<f64>,
    total: f64,
}

impl Profile {
    /// An all-zero profile with `num_symbols` symbols.
    #[must_use]
    pub fn zeroed(granularity: Granularity, num_symbols: usize) -> Self {
        Profile {
            granularity,
            weights: vec![0.0; num_symbols],
            total: 0.0,
        }
    }

    /// Builds a profile from per-instruction cycle counts (the Oracle's
    /// native output) at the map's granularity.
    #[must_use]
    pub fn from_instr_cycles(per_instr: &[f64], map: &SymbolMap) -> Self {
        let mut p = Profile::zeroed(map.granularity(), map.num_symbols());
        for (i, &cycles) in per_instr.iter().enumerate() {
            if cycles > 0.0 {
                p.add(map.symbol(tip_isa::InstrIdx::new(i as u32)), cycles);
            }
        }
        p
    }

    /// Builds a profile from resolved samples. Each sample stands for the
    /// time period since the previous sample (its `weight_cycles`), split
    /// across its attributed instructions.
    #[must_use]
    pub fn from_samples(samples: &[Sample], map: &SymbolMap) -> Self {
        let mut p = Profile::zeroed(map.granularity(), map.num_symbols());
        for s in samples {
            for &(idx, frac) in &s.targets {
                p.add(map.symbol(idx), s.weight_cycles * frac);
            }
        }
        p
    }

    /// Adds `cycles` to `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn add(&mut self, symbol: SymbolId, cycles: f64) {
        self.weights[symbol.0 as usize] += cycles;
        self.total += cycles;
    }

    /// The granularity this profile is expressed at.
    #[must_use]
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Total attributed cycles.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The raw attributed cycles per symbol.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fraction of total time attributed to `symbol` (0 if the profile is
    /// empty).
    #[must_use]
    pub fn share(&self, symbol: SymbolId) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.weights[symbol.0 as usize] / self.total
        }
    }

    /// Symbols ordered by descending attributed time, with their shares.
    #[must_use]
    pub fn ranked(&self) -> Vec<(SymbolId, f64)> {
        let mut v: Vec<(SymbolId, f64)> = self
            .weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, _)| (SymbolId(i as u32), self.share(SymbolId(i as u32))))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));
        v
    }

    /// The profile error of `self` measured against the golden `oracle`
    /// profile: `e = 1 - Σ_s min(p(s), o(s))` over normalized profiles.
    ///
    /// Returns 1.0 (100% error) if either profile is empty.
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different granularities or symbol counts.
    #[must_use]
    pub fn error_vs(&self, oracle: &Profile) -> f64 {
        assert_eq!(self.granularity, oracle.granularity, "granularity mismatch");
        assert_eq!(
            self.weights.len(),
            oracle.weights.len(),
            "symbol-count mismatch"
        );
        if self.total <= 0.0 || oracle.total <= 0.0 {
            return 1.0;
        }
        let overlap: f64 = self
            .weights
            .iter()
            .zip(&oracle.weights)
            .map(|(&p, &o)| (p / self.total).min(o / oracle.total))
            .sum();
        (1.0 - overlap).clamp(0.0, 1.0)
    }

    /// A copy of the profile keeping only symbols for which `keep` returns
    /// true (everything else is dropped and the total shrinks accordingly).
    ///
    /// The paper's methodology only includes samples that hit application
    /// code, excluding OS/handler time (Section 4); filter with a predicate
    /// over function symbols to do the same:
    ///
    /// ```
    /// # use tip_core::Profile;
    /// # use tip_isa::{Granularity, SymbolId};
    /// let mut p = Profile::zeroed(Granularity::Function, 3);
    /// p.add(SymbolId(0), 10.0); // application code
    /// p.add(SymbolId(2), 5.0);  // kernel handler
    /// let app_only = p.retain(|sym| sym.0 != 2);
    /// assert_eq!(app_only.total(), 10.0);
    /// ```
    #[must_use]
    pub fn retain(&self, keep: impl Fn(SymbolId) -> bool) -> Profile {
        let mut out = Profile::zeroed(self.granularity, self.weights.len());
        for (i, &w) in self.weights.iter().enumerate() {
            let sym = SymbolId(i as u32);
            if w > 0.0 && keep(sym) {
                out.add(sym, w);
            }
        }
        out
    }

    /// Renders the top `n` symbols with names from `program` (for reports).
    #[must_use]
    pub fn top_table(&self, program: &Program, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (sym, share) in self.ranked().into_iter().take(n) {
            let _ = writeln!(
                out,
                "{:>7.3}%  {}",
                share * 100.0,
                program.symbol_name(self.granularity, sym)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::InstrIdx;

    fn p(g: Granularity, w: &[f64]) -> Profile {
        let mut prof = Profile::zeroed(g, w.len());
        for (i, &x) in w.iter().enumerate() {
            if x != 0.0 {
                prof.add(SymbolId(i as u32), x);
            }
        }
        prof
    }

    #[test]
    fn identical_profiles_have_zero_error() {
        let a = p(Granularity::Function, &[3.0, 1.0, 6.0]);
        assert!(a.error_vs(&a) < 1e-12);
    }

    #[test]
    fn disjoint_profiles_have_full_error() {
        let a = p(Granularity::Function, &[1.0, 0.0]);
        let b = p(Granularity::Function, &[0.0, 1.0]);
        assert!((a.error_vs(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_is_half_l1_distance() {
        // p = (0.75, 0.25), o = (0.25, 0.75): overlap = 0.5, error = 0.5.
        let a = p(Granularity::BasicBlock, &[3.0, 1.0]);
        let b = p(Granularity::BasicBlock, &[1.0, 3.0]);
        assert!((a.error_vs(&b) - 0.5).abs() < 1e-12);
        // Error is symmetric for normalized profiles.
        assert!((b.error_vs(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_does_not_change_error() {
        let a = p(Granularity::Instruction, &[2.0, 2.0, 4.0]);
        let b = p(Granularity::Instruction, &[20.0, 20.0, 40.0]);
        assert!(a.error_vs(&b) < 1e-12);
    }

    #[test]
    fn empty_profile_is_all_error() {
        let a = p(Granularity::Function, &[0.0, 0.0]);
        let b = p(Granularity::Function, &[1.0, 0.0]);
        assert_eq!(a.error_vs(&b), 1.0);
        assert_eq!(b.error_vs(&a), 1.0);
    }

    #[test]
    fn from_samples_weights_by_interval() {
        use crate::sample::Sample;
        let mut builder = tip_isa::ProgramBuilder::new();
        let f = builder.function("main");
        let blk = builder.block(f);
        for _ in 0..3 {
            builder.push(blk, tip_isa::Instr::nop());
        }
        builder.push(blk, tip_isa::Instr::halt());
        let program = builder.build().expect("valid");
        let map = program.symbol_map(Granularity::Instruction);

        let samples = vec![
            Sample {
                cycle: 100,
                weight_cycles: 100.0,
                targets: vec![(InstrIdx::new(0), 1.0)],
                category: None,
            },
            Sample {
                cycle: 200,
                weight_cycles: 100.0,
                targets: vec![(InstrIdx::new(1), 0.5), (InstrIdx::new(2), 0.5)],
                category: None,
            },
        ];
        let prof = Profile::from_samples(&samples, &map);
        assert!((prof.total() - 200.0).abs() < 1e-9);
        assert!((prof.share(SymbolId(0)) - 0.5).abs() < 1e-12);
        assert!((prof.share(SymbolId(1)) - 0.25).abs() < 1e-12);
        assert!((prof.share(SymbolId(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn retain_drops_filtered_symbols_and_rescales_shares() {
        let prof = p(Granularity::Function, &[6.0, 0.0, 3.0, 1.0]);
        let kept = prof.retain(|sym| sym.0 != 3);
        assert!((kept.total() - 9.0).abs() < 1e-12);
        assert!((kept.share(SymbolId(0)) - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(kept.weights()[3], 0.0);
        // Error against a same-filtered oracle is well-defined.
        assert!(kept.error_vs(&kept) < 1e-12);
    }

    #[test]
    fn ranked_is_descending() {
        let a = p(Granularity::Function, &[1.0, 5.0, 3.0]);
        let r = a.ranked();
        assert_eq!(r[0].0, SymbolId(1));
        assert_eq!(r[1].0, SymbolId(2));
        assert_eq!(r[2].0, SymbolId(0));
    }
}
