//! Running many profilers over one simulation in lock-step.
//!
//! The paper evaluates up to 19 profiler configurations in a single FireSim
//! run so that every profiler samples the exact same cycles; differences
//! between their profiles are then purely systematic. [`ProfilerBank`] does
//! the same: it owns the shared sampling schedule, the always-on Oracle, and
//! any set of sampled profilers, and implements
//! [`TraceSink`] so it can be attached directly to a
//! [`tip_ooo::Core`] run.

use crate::oracle::{OracleProfiler, OracleResult};
use crate::profile::Profile;
use crate::profilers::{AnyProfiler, ProfilerId, SampledProfiler};
use crate::sample::Sample;
use crate::sampler::{SampleSchedule, SamplerConfig};
use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::{Granularity, Program};
use tip_ooo::{CycleRecord, TraceSink};

/// The Oracle plus a set of sampled profilers sharing one schedule.
pub struct ProfilerBank {
    schedule: SampleSchedule,
    oracle: OracleProfiler,
    /// Statically-dispatched profilers: the per-cycle latch fan-out inlines
    /// into [`TraceSink::on_cycle`] instead of going through seven separate
    /// vtable calls (see [`ProfilerId::build_static`]).
    profilers: Vec<(ProfilerId, AnyProfiler)>,
    cycles: u64,
    /// Streaming flushes taken so far. Deliberately not snapshotted: after
    /// a restore the counter (like the profilers' delta trackers) restarts,
    /// and the next flush re-reports cumulative totals with `seq == 1`.
    stream_seq: u64,
}

// A bank moves to an executor worker thread with the run it instruments;
// `SampledProfiler: Send` makes boxed profilers — and the concrete enum the
// bank stores — `Send` by construction. Regressions fail the build here.
const _: () = {
    const fn send<T: Send>() {}
    send::<ProfilerBank>();
    send::<Box<dyn SampledProfiler>>();
    send::<AnyProfiler>();
};

impl ProfilerBank {
    /// Creates a bank for `program` with the given schedule and profilers.
    #[must_use]
    pub fn new(program: &Program, sampler: SamplerConfig, ids: &[ProfilerId]) -> Self {
        ProfilerBank {
            schedule: sampler.schedule(),
            oracle: OracleProfiler::new(program.len()),
            profilers: ids.iter().map(|&id| (id, id.build_static())).collect(),
            cycles: 0,
            stream_seq: 0,
        }
    }

    /// Serializes the bank's complete mid-run state — schedule position,
    /// Oracle accumulators, and every profiler's in-flight state — for a
    /// checkpoint. [`Self::restore`] continues the run bit-identically.
    ///
    /// Each profiler serializes straight into the single output buffer; its
    /// length prefix is reserved up front and patched back afterwards
    /// (`snap::put_len` is a fixed-width u32), instead of staging every
    /// state in a temporary `Vec` — checkpoints are taken mid-run, so the
    /// snapshot path avoids per-profiler allocations.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.schedule.snapshot_into(&mut out);
        self.oracle.snapshot_into(&mut out);
        snap::put_len(&mut out, self.profilers.len());
        for (id, p) in &self.profilers {
            snap::put_u8(&mut out, id.tag());
            let len_at = out.len();
            snap::put_len(&mut out, 0);
            let state_at = out.len();
            p.snapshot_into(&mut out);
            let state_len =
                u32::try_from(out.len() - state_at).expect("profiler state exceeds u32");
            out[len_at..state_at].copy_from_slice(&state_len.to_le_bytes());
        }
        snap::put_u64(&mut out, self.cycles);
        out
    }

    /// Restores a bank captured by [`Self::snapshot`] for the same program
    /// and sampler configuration. The profiler set is recovered from the
    /// snapshot itself.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the bytes are damaged, captured under a
    /// different sampler configuration, sized for another program, or name
    /// an unknown profiler.
    pub fn restore(
        program: &Program,
        sampler: SamplerConfig,
        data: &[u8],
    ) -> Result<Self, SnapError> {
        let r = &mut SnapReader::new(data);
        let schedule = SampleSchedule::restore(r)?;
        if *schedule.config() != sampler {
            return Err(SnapError::Malformed("sampler config mismatch"));
        }
        let oracle = OracleProfiler::restore(program.len(), r)?;
        let n = r.len()?;
        let mut profilers = Vec::with_capacity(n);
        for _ in 0..n {
            let id = ProfilerId::from_tag(r.u8()?)
                .ok_or(SnapError::Malformed("unknown profiler tag"))?;
            let state_len = r.len()?;
            let mut p = id.build_static();
            let state = &mut SnapReader::new(r.bytes(state_len)?);
            p.restore_from(state, program.len())?;
            if !state.is_empty() {
                return Err(SnapError::Malformed("trailing bytes in profiler state"));
            }
            profilers.push((id, p));
        }
        let bank = ProfilerBank {
            schedule,
            oracle,
            profilers,
            cycles: r.u64()?,
            stream_seq: 0,
        };
        if !r.is_empty() {
            return Err(SnapError::Malformed("trailing bytes after bank state"));
        }
        Ok(bank)
    }

    /// Finishes the run: resolves sample weights (each sample represents the
    /// interval since the previous one) and returns everything.
    #[must_use]
    pub fn finish(self) -> BankResult {
        let mut samples = Vec::with_capacity(self.profilers.len());
        for (id, mut p) in self.profilers {
            let mut s = p.drain_samples();
            // Samples are produced in trigger order; sort defensively, then
            // weight each by the interval since the previous trigger.
            crate::sample::weight_by_intervals(&mut s);
            samples.push((id, s));
        }
        BankResult {
            oracle: self.oracle.finish(),
            samples,
            total_cycles: self.cycles,
        }
    }

    /// Flushes a streaming delta from every attached profiler and the
    /// Oracle at `map`'s granularity: each profiler's cumulative profile so
    /// far, quantized to integer units, minus what it last reported.
    ///
    /// This is a pure observation path: it never drains samples or touches
    /// any state that [`Self::finish`], [`Self::snapshot`], or the result
    /// files see, so enabling streaming cannot change final artifacts. The
    /// flush sequence number restarts at 1 whenever the bank (and with it
    /// the un-snapshotted trackers) is rebuilt — aggregators treat that as
    /// a slot reset, which keeps checkpoint/resume double-count-free.
    pub fn flush_deltas(&mut self, map: &tip_isa::SymbolMap) -> BankDeltas {
        self.stream_seq += 1;
        let per_profiler = self
            .profilers
            .iter_mut()
            .map(|(id, p)| (*id, p.flush_delta(map)))
            .collect();
        BankDeltas {
            seq: self.stream_seq,
            per_profiler,
            oracle: self.oracle.flush_delta(map),
            stack: self.oracle.flush_stack_delta(),
            cycles: self.cycles,
        }
    }
}

/// One streaming flush: every profiler's [`ProfileDelta`] since the last
/// flush, plus the Oracle's delta, its cycle-stack delta, and the cycle
/// count reached. Merging the flushes of a run (in any order) reproduces
/// the whole-run profiles exactly — see `proptest_core`'s slice-merge
/// byte-identity property.
#[derive(Debug, Clone, PartialEq)]
pub struct BankDeltas {
    /// 1-based flush sequence number within this bank instance. A sequence
    /// restarting at 1 signals "cumulative from zero again" (fresh attempt
    /// or checkpoint restore); aggregators reset the slot before applying.
    pub seq: u64,
    /// Per-profiler deltas, in the bank's profiler order.
    pub per_profiler: Vec<(ProfilerId, crate::profile::ProfileDelta)>,
    /// The Oracle's delta over the same symbol space.
    pub oracle: crate::profile::ProfileDelta,
    /// Oracle cycle-stack increments per [`crate::CycleCategory`], in units
    /// of 1/[`crate::profile::UNITS_PER_CYCLE`] cycle.
    pub stack: Vec<i64>,
    /// Total cycles simulated when the flush was taken.
    pub cycles: u64,
}

impl ProfilerBank {
    /// Reference (pre-split) observation path: polls the schedule on every
    /// cycle and drives each profiler through the two-argument `observe`
    /// shim. Semantically identical to the [`TraceSink::on_cycle`] fast
    /// path — the `fast_path_matches_reference_fanout` proptest holds the
    /// two bit-equal on arbitrary programs and sampler configs.
    pub fn on_cycle_reference(&mut self, record: &CycleRecord) {
        self.cycles += 1;
        let sampled = self.schedule.is_sample(record.cycle);
        self.oracle.on_cycle(record);
        for (_, p) in &mut self.profilers {
            p.observe(record, sampled);
        }
    }
}

impl TraceSink for ProfilerBank {
    #[inline]
    fn on_cycle(&mut self, record: &CycleRecord) {
        self.cycles += 1;
        self.oracle.on_cycle(record);
        // The schedule precomputes its next sample cycle and advances only
        // when it is reached (see `SampleSchedule::is_sample`), so
        // non-sampled cycles skip the schedule entirely and pay only the
        // Oracle update plus each profiler's cheap latch — the full
        // attribution fan-out runs on the ~1/interval sampled cycles.
        if record.cycle == self.schedule.next_sample_cycle() {
            let hit = self.schedule.is_sample(record.cycle);
            debug_assert!(hit, "the precomputed sample cycle must hit");
            for (_, p) in &mut self.profilers {
                p.on_sample(record);
            }
        } else {
            for (_, p) in &mut self.profilers {
                p.latch(record);
            }
        }
    }
}

impl std::fmt::Debug for ProfilerBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilerBank")
            .field("cycles", &self.cycles)
            .field(
                "profilers",
                &self.profilers.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

/// Everything a profiled run produced.
#[derive(Debug)]
pub struct BankResult {
    /// The golden-reference accounting.
    pub oracle: OracleResult,
    /// Per-profiler resolved samples.
    pub samples: Vec<(ProfilerId, Vec<Sample>)>,
    /// Total cycles simulated.
    pub total_cycles: u64,
}

impl BankResult {
    /// The samples of one profiler, or `None` if `id` was not in the bank.
    #[must_use]
    pub fn try_samples_of(&self, id: ProfilerId) -> Option<&[Sample]> {
        self.samples
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, s)| s.as_slice())
    }

    /// The samples of one profiler.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not part of the bank — use [`Self::try_samples_of`]
    /// when the profiler set is not statically known.
    #[must_use]
    pub fn samples_of(&self, id: ProfilerId) -> &[Sample] {
        self.try_samples_of(id)
            .unwrap_or_else(|| panic!("profiler {id} was not in the bank"))
    }

    /// Builds `id`'s profile at `granularity`, or `None` if `id` was not in
    /// the bank.
    #[must_use]
    pub fn try_profile_of(
        &self,
        program: &Program,
        id: ProfilerId,
        granularity: Granularity,
    ) -> Option<Profile> {
        self.try_samples_of(id)
            .map(|s| Profile::from_samples(s, &program.symbol_map(granularity)))
    }

    /// Builds `id`'s profile at `granularity`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not part of the bank — use [`Self::try_profile_of`]
    /// when the profiler set is not statically known.
    #[must_use]
    pub fn profile_of(
        &self,
        program: &Program,
        id: ProfilerId,
        granularity: Granularity,
    ) -> Profile {
        Profile::from_samples(self.samples_of(id), &program.symbol_map(granularity))
    }

    /// The paper's profile error of `id` against the Oracle at
    /// `granularity`.
    #[must_use]
    pub fn error_of(&self, program: &Program, id: ProfilerId, granularity: Granularity) -> f64 {
        let oracle = self.oracle.profile(program, granularity);
        self.profile_of(program, id, granularity).error_vs(&oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::{BranchBehavior, Instr, ProgramBuilder, Reg};
    use tip_ooo::{Core, CoreConfig};

    fn simple_program() -> Program {
        let mut b = ProgramBuilder::named("bank-test");
        let main = b.function("main");
        let blk = b.block(main);
        for i in 0..4 {
            b.push(blk, Instr::int_alu(Some(Reg::int(i + 1)), [None, None]));
        }
        b.push(
            blk,
            Instr::branch(blk, BranchBehavior::Loop { taken_iters: 5_000 }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        b.build().expect("valid")
    }

    #[test]
    fn bank_runs_all_profilers_in_lockstep() {
        let p = simple_program();
        let mut bank = ProfilerBank::new(&p, SamplerConfig::periodic(50), &ProfilerId::ALL);
        let mut core = Core::new(&p, CoreConfig::default(), 3);
        core.run(&mut bank, 1_000_000);
        let result = bank.finish();

        assert!(result.total_cycles > 0);
        for (id, samples) in &result.samples {
            assert!(!samples.is_empty(), "{id} produced no samples");
            // Fractions in each sample sum to 1.
            for s in samples {
                let sum: f64 = s.targets.iter().map(|t| t.1).sum();
                assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "{id} sample fractions sum to {sum}"
                );
                assert!(s.weight_cycles > 0.0);
            }
        }
    }

    #[test]
    fn tip_beats_heuristics_on_simple_loop() {
        let p = simple_program();
        let mut bank = ProfilerBank::new(&p, SamplerConfig::periodic(37), &ProfilerId::ALL);
        let mut core = Core::new(&p, CoreConfig::default(), 3);
        core.run(&mut bank, 1_000_000);
        let result = bank.finish();

        let g = Granularity::Instruction;
        let tip = result.error_of(&p, ProfilerId::Tip, g);
        let software = result.error_of(&p, ProfilerId::Software, g);
        assert!(
            tip < software,
            "TIP ({tip:.3}) must beat Software ({software:.3}) at instruction level"
        );
        assert!(
            tip < 0.2,
            "TIP error should be small on a simple loop, got {tip:.3}"
        );
    }

    #[test]
    fn bank_snapshot_resumes_identically() {
        let p = simple_program();
        let sampler = SamplerConfig::random(41, 11);
        let ids: Vec<ProfilerId> = ProfilerId::ALL.to_vec();

        // Uninterrupted reference.
        let mut full = ProfilerBank::new(&p, sampler, &ids);
        let mut core = Core::new(&p, CoreConfig::default(), 3);
        core.run(&mut full, 1_000_000);
        let want = full.finish();

        // Same run, checkpointed and restored mid-flight (twice).
        let mut bank = ProfilerBank::new(&p, sampler, &ids);
        let mut core = Core::new(&p, CoreConfig::default(), 3);
        core.run(&mut bank, 1_009);
        let core_snap = core.snapshot();
        let bank_snap = bank.snapshot();
        drop((core, bank));
        let mut core = Core::restore(&p, CoreConfig::default(), &core_snap).expect("core");
        let mut bank = ProfilerBank::restore(&p, sampler, &bank_snap).expect("bank");
        core.run(&mut bank, 1_000_000);
        let got = bank.finish();

        assert_eq!(got.total_cycles, want.total_cycles);
        assert_eq!(got.oracle, want.oracle);
        assert_eq!(got.samples.len(), want.samples.len());
        for ((gid, gs), (wid, ws)) in got.samples.iter().zip(&want.samples) {
            assert_eq!(gid, wid);
            assert_eq!(gs, ws, "{gid} samples diverge after restore");
        }
    }

    #[test]
    fn bank_restore_rejects_damage_and_mismatch() {
        let p = simple_program();
        let sampler = SamplerConfig::periodic(50);
        let mut bank = ProfilerBank::new(&p, sampler, &ProfilerId::ALL);
        let mut core = Core::new(&p, CoreConfig::default(), 3);
        core.run(&mut bank, 2_000);
        let snap = bank.snapshot();

        // A different sampler configuration must be rejected.
        assert!(ProfilerBank::restore(&p, SamplerConfig::periodic(51), &snap).is_err());
        // Truncation anywhere is an error, never a panic.
        for cut in (0..snap.len()).step_by(snap.len() / 19 + 1) {
            assert!(ProfilerBank::restore(&p, sampler, &snap[..cut]).is_err());
        }
        assert!(ProfilerBank::restore(&p, sampler, &snap[..snap.len() - 1]).is_err());
    }

    #[test]
    fn sample_weights_cover_the_sampled_span() {
        let p = simple_program();
        let mut bank = ProfilerBank::new(&p, SamplerConfig::periodic(100), &[ProfilerId::Tip]);
        let mut core = Core::new(&p, CoreConfig::default(), 3);
        core.run(&mut bank, 1_000_000);
        let result = bank.finish();
        let samples = result.samples_of(ProfilerId::Tip);
        let total_weight: f64 = samples.iter().map(|s| s.weight_cycles).sum();
        let last_cycle = samples.last().expect("samples exist").cycle;
        assert!((total_weight - (last_cycle as f64 + 1.0)).abs() < 1e-6);
    }
}
