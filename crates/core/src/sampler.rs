//! Statistical sampling schedules.
//!
//! The paper's profilers sample at 4 kHz on a 3.2 GHz core — one sample every
//! 800 000 cycles over complete SPEC runs. Our benchmarks are shorter, so the
//! schedule is expressed directly in cycles; [`SamplerConfig::from_frequency`]
//! maps a paper-style frequency onto a cycle interval given the clock.
//!
//! All profilers in a [`crate::ProfilerBank`] share one schedule so they
//! sample the exact same cycles — the paper's methodology for isolating
//! systematic (attribution) error from unsystematic (sampling) error.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use tip_isa::snap::{self, SnapError, SnapReader};

/// How sample cycles are placed within each interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMode {
    /// One sample exactly every `interval` cycles (the paper's default;
    /// simplest in hardware).
    Periodic,
    /// One sample uniformly at random within each `interval`-cycle window
    /// (the Figure 11b alternative that avoids aliasing with repetitive
    /// program behaviour).
    Random,
}

/// A sampling schedule: interval, placement mode, and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Cycles per sampling interval (one sample per interval).
    pub interval: u64,
    /// Placement of the sample within each interval.
    pub mode: SamplingMode,
    /// Seed for [`SamplingMode::Random`].
    pub seed: u64,
}

impl SamplerConfig {
    /// A periodic schedule with the given interval.
    #[must_use]
    pub fn periodic(interval: u64) -> Self {
        SamplerConfig {
            interval,
            mode: SamplingMode::Periodic,
            seed: 0,
        }
    }

    /// A random-within-interval schedule.
    #[must_use]
    pub fn random(interval: u64, seed: u64) -> Self {
        SamplerConfig {
            interval,
            mode: SamplingMode::Random,
            seed,
        }
    }

    /// Maps a sampling frequency in Hz onto a cycle interval for a core
    /// clocked at `clock_ghz` (e.g. 4 kHz at 3.2 GHz = 800 000 cycles).
    #[must_use]
    pub fn from_frequency(freq_hz: f64, clock_ghz: f64, mode: SamplingMode, seed: u64) -> Self {
        let interval = ((clock_ghz * 1e9) / freq_hz).round().max(1.0) as u64;
        SamplerConfig {
            interval,
            mode,
            seed,
        }
    }

    /// Builds the runtime schedule.
    #[must_use]
    pub fn schedule(&self) -> SampleSchedule {
        SampleSchedule::new(*self)
    }
}

/// Stateful sample-cycle generator: ask it once per cycle whether to sample.
#[derive(Debug, Clone)]
pub struct SampleSchedule {
    config: SamplerConfig,
    next_sample: u64,
    interval_start: u64,
    rng: SmallRng,
    samples_taken: u64,
}

impl SampleSchedule {
    /// Creates a schedule; the first sample lands in the first interval.
    #[must_use]
    pub fn new(config: SamplerConfig) -> Self {
        assert!(config.interval > 0, "sampling interval must be positive");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let next_sample = match config.mode {
            SamplingMode::Periodic => config.interval - 1,
            SamplingMode::Random => rng.random_range(0..config.interval),
        };
        SampleSchedule {
            config,
            next_sample,
            interval_start: 0,
            rng,
            samples_taken: 0,
        }
    }

    /// Whether `cycle` is a sample cycle, for monotonically increasing
    /// `cycle` values.
    ///
    /// The schedule advances *eagerly*: all state (interval position, RNG
    /// draws, sample count) mutates at the moment a sample hits, so calls
    /// for non-sample cycles are pure no-ops. Callers that poll every cycle
    /// see the same hit sequence as the historical advance-at-interval-end
    /// algorithm (one RNG draw per interval, in the same order — see the
    /// `eager_advance_matches_reference_algorithm` test), and callers that
    /// know [`Self::next_sample_cycle`] may skip the call entirely on other
    /// cycles, which is what makes the [`crate::ProfilerBank`] sample-aware
    /// fast path possible.
    #[inline]
    pub fn is_sample(&mut self, cycle: u64) -> bool {
        if cycle != self.next_sample {
            return false;
        }
        self.samples_taken += 1;
        self.interval_start += self.config.interval;
        self.next_sample = match self.config.mode {
            SamplingMode::Periodic => self.interval_start + self.config.interval - 1,
            SamplingMode::Random => {
                self.interval_start + self.rng.random_range(0..self.config.interval)
            }
        };
        true
    }

    /// The precomputed cycle the next sample will land on.
    ///
    /// Strictly increases after each hit; `is_sample` is a no-op for any
    /// cycle before it.
    #[must_use]
    #[inline]
    pub fn next_sample_cycle(&self) -> u64 {
        self.next_sample
    }

    /// Samples taken so far.
    #[must_use]
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Serializes the configuration and mid-run position for a checkpoint.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_u64(out, self.config.interval);
        snap::put_u8(
            out,
            match self.config.mode {
                SamplingMode::Periodic => 0,
                SamplingMode::Random => 1,
            },
        );
        snap::put_u64(out, self.config.seed);
        snap::put_u64(out, self.next_sample);
        snap::put_u64(out, self.interval_start);
        snap::put_rng(out, &self.rng);
        snap::put_u64(out, self.samples_taken);
    }

    /// Restores a schedule captured by [`Self::snapshot_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is damaged or encodes an
    /// impossible schedule (zero interval, unknown mode).
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let interval = r.u64()?;
        if interval == 0 {
            return Err(SnapError::Malformed("zero sampling interval"));
        }
        let mode = match r.u8()? {
            0 => SamplingMode::Periodic,
            1 => SamplingMode::Random,
            _ => return Err(SnapError::Malformed("sampling mode tag")),
        };
        let config = SamplerConfig {
            interval,
            mode,
            seed: r.u64()?,
        };
        Ok(SampleSchedule {
            config,
            next_sample: r.u64()?,
            interval_start: r.u64()?,
            rng: snap::get_rng(r)?,
            samples_taken: r.u64()?,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cycles(cfg: SamplerConfig, horizon: u64) -> Vec<u64> {
        let mut s = cfg.schedule();
        (0..horizon).filter(|&c| s.is_sample(c)).collect()
    }

    #[test]
    fn periodic_samples_every_interval() {
        let got = sample_cycles(SamplerConfig::periodic(100), 1_000);
        assert_eq!(got, vec![99, 199, 299, 399, 499, 599, 699, 799, 899, 999]);
    }

    #[test]
    fn random_places_one_sample_per_interval() {
        let got = sample_cycles(SamplerConfig::random(100, 7), 10_000);
        assert_eq!(got.len(), 100);
        for (i, &c) in got.iter().enumerate() {
            let lo = i as u64 * 100;
            assert!(
                (lo..lo + 100).contains(&c),
                "sample {c} outside interval {i}"
            );
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        assert_eq!(
            sample_cycles(SamplerConfig::random(64, 3), 10_000),
            sample_cycles(SamplerConfig::random(64, 3), 10_000)
        );
        assert_ne!(
            sample_cycles(SamplerConfig::random(64, 3), 10_000),
            sample_cycles(SamplerConfig::random(64, 4), 10_000)
        );
    }

    #[test]
    fn frequency_mapping_matches_paper() {
        let cfg = SamplerConfig::from_frequency(4_000.0, 3.2, SamplingMode::Periodic, 0);
        assert_eq!(
            cfg.interval, 800_000,
            "4 kHz at 3.2 GHz is one sample per 800k cycles"
        );
    }

    #[test]
    fn counts_samples() {
        let mut s = SamplerConfig::periodic(10).schedule();
        for c in 0..100 {
            s.is_sample(c);
        }
        assert_eq!(s.samples_taken(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = SamplerConfig::periodic(0).schedule();
    }

    /// The pre-PR-4 schedule advanced its interval state at the *end* of
    /// every interval, paying an RNG draw and two compares on each of those
    /// cycles whether or not a sample hit. The eager-advance rewrite mutates
    /// only at hit time; this reference reimplements the historical
    /// algorithm verbatim so the hit sequences can be compared exactly.
    struct ReferenceSchedule {
        config: SamplerConfig,
        next_sample: u64,
        interval_start: u64,
        rng: SmallRng,
        samples_taken: u64,
    }

    impl ReferenceSchedule {
        fn new(config: SamplerConfig) -> Self {
            let mut rng = SmallRng::seed_from_u64(config.seed);
            let next_sample = match config.mode {
                SamplingMode::Periodic => config.interval - 1,
                SamplingMode::Random => rng.random_range(0..config.interval),
            };
            ReferenceSchedule {
                config,
                next_sample,
                interval_start: 0,
                rng,
                samples_taken: 0,
            }
        }

        fn is_sample(&mut self, cycle: u64) -> bool {
            let hit = cycle == self.next_sample;
            if hit {
                self.samples_taken += 1;
            }
            if cycle + 1 >= self.interval_start + self.config.interval {
                self.interval_start += self.config.interval;
                self.next_sample = match self.config.mode {
                    SamplingMode::Periodic => self.interval_start + self.config.interval - 1,
                    SamplingMode::Random => {
                        self.interval_start + self.rng.random_range(0..self.config.interval)
                    }
                };
            }
            hit
        }
    }

    #[test]
    fn eager_advance_matches_reference_algorithm() {
        let mut configs = vec![SamplerConfig::periodic(1), SamplerConfig::periodic(149)];
        for interval in [1, 2, 3, 64, 149, 1000] {
            for seed in 0..8 {
                configs.push(SamplerConfig::random(interval, seed));
            }
        }
        for cfg in configs {
            let mut new = cfg.schedule();
            let mut reference = ReferenceSchedule::new(cfg);
            for cycle in 0..20_000 {
                assert_eq!(
                    new.is_sample(cycle),
                    reference.is_sample(cycle),
                    "hit divergence at cycle {cycle} under {cfg:?}"
                );
                assert_eq!(new.samples_taken(), reference.samples_taken);
            }
        }
    }

    #[test]
    fn next_sample_cycle_predicts_every_hit() {
        for cfg in [
            SamplerConfig::periodic(100),
            SamplerConfig::random(100, 9),
            SamplerConfig::random(1, 3),
        ] {
            let mut skipping = cfg.schedule();
            let dense = sample_cycles(cfg, 50_000);
            // Drive a second schedule only at its own predicted cycles; it
            // must reproduce the densely polled hit sequence.
            let mut predicted = Vec::new();
            while skipping.next_sample_cycle() < 50_000 {
                let c = skipping.next_sample_cycle();
                assert!(skipping.is_sample(c), "predicted cycle must hit");
                predicted.push(c);
            }
            assert_eq!(
                predicted, dense,
                "skip-driven hits must match dense polling"
            );
        }
    }
}
