//! Snapshot codec helpers for the profiler stack.
//!
//! Serializes the value types shared by the profilers (samples, categories,
//! the OIR) so a [`crate::ProfilerBank`] can be checkpointed mid-run and
//! restored to continue producing exactly the samples an uninterrupted run
//! would have. Decoding validates every tag and every instruction index, so
//! a damaged checkpoint surfaces as a [`SnapError`] instead of a panic.

use crate::category::{CycleCategory, Oir, OirEntry};
use crate::sample::Sample;
use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::{InstrAddr, InstrIdx};

/// Reads an instruction index, rejecting positions at or past `num_instrs`.
pub(crate) fn get_idx(r: &mut SnapReader<'_>, num_instrs: usize) -> Result<InstrIdx, SnapError> {
    let raw = r.u32()?;
    if (raw as usize) >= num_instrs {
        return Err(SnapError::Malformed("instruction index out of range"));
    }
    Ok(InstrIdx::new(raw))
}

pub(crate) fn put_opt_category(out: &mut Vec<u8>, category: Option<CycleCategory>) {
    match category {
        None => snap::put_u8(out, 0),
        Some(c) => snap::put_u8(out, 1 + c as u8),
    }
}

pub(crate) fn get_opt_category(r: &mut SnapReader<'_>) -> Result<Option<CycleCategory>, SnapError> {
    match r.u8()? {
        0 => Ok(None),
        tag => CycleCategory::ALL
            .get(tag as usize - 1)
            .copied()
            .map(Some)
            .ok_or(SnapError::Malformed("cycle category tag")),
    }
}

pub(crate) fn put_sample(out: &mut Vec<u8>, s: &Sample) {
    snap::put_u64(out, s.cycle);
    snap::put_f64(out, s.weight_cycles);
    snap::put_len(out, s.targets.len());
    for &(idx, frac) in &s.targets {
        snap::put_u32(out, idx.raw());
        snap::put_f64(out, frac);
    }
    put_opt_category(out, s.category);
}

pub(crate) fn get_sample(r: &mut SnapReader<'_>, num_instrs: usize) -> Result<Sample, SnapError> {
    let cycle = r.u64()?;
    let weight_cycles = r.f64()?;
    let n = r.len_of(12)?;
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = get_idx(r, num_instrs)?;
        targets.push((idx, r.f64()?));
    }
    Ok(Sample {
        cycle,
        weight_cycles,
        targets,
        category: get_opt_category(r)?,
    })
}

pub(crate) fn put_samples(out: &mut Vec<u8>, samples: &[Sample]) {
    snap::put_len(out, samples.len());
    for s in samples {
        put_sample(out, s);
    }
}

pub(crate) fn get_samples(
    r: &mut SnapReader<'_>,
    num_instrs: usize,
) -> Result<Vec<Sample>, SnapError> {
    let n = r.len()?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        samples.push(get_sample(r, num_instrs)?);
    }
    Ok(samples)
}

pub(crate) fn put_oir(out: &mut Vec<u8>, oir: &Oir) {
    match &oir.entry {
        None => snap::put_u8(out, 0),
        Some(e) => {
            snap::put_u8(out, 1);
            snap::put_u64(out, e.addr.raw());
            snap::put_u32(out, e.idx.raw());
            snap::put_bool(out, e.mispredicted);
            snap::put_bool(out, e.flush);
            snap::put_bool(out, e.exception);
        }
    }
}

pub(crate) fn get_oir(r: &mut SnapReader<'_>, num_instrs: usize) -> Result<Oir, SnapError> {
    let entry = match r.u8()? {
        0 => None,
        1 => {
            let addr = InstrAddr::new(r.u64()?);
            Some(OirEntry {
                addr,
                idx: get_idx(r, num_instrs)?,
                mispredicted: r.bool()?,
                flush: r.bool()?,
                exception: r.bool()?,
            })
        }
        _ => return Err(SnapError::Malformed("OIR tag")),
    };
    Ok(Oir { entry })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrips() {
        let s = Sample {
            cycle: 99,
            weight_cycles: 37.0,
            targets: vec![(InstrIdx::new(1), 0.5), (InstrIdx::new(3), 0.5)],
            category: Some(CycleCategory::Mispredict),
        };
        let mut buf = Vec::new();
        put_sample(&mut buf, &s);
        let mut r = SnapReader::new(&buf);
        assert_eq!(get_sample(&mut r, 4).unwrap(), s);
        assert!(r.is_empty());
        // An index past the program is rejected.
        assert!(get_sample(&mut SnapReader::new(&buf), 3).is_err());
    }

    #[test]
    fn category_tags_roundtrip() {
        for c in CycleCategory::ALL.into_iter().map(Some).chain([None]) {
            let mut buf = Vec::new();
            put_opt_category(&mut buf, c);
            assert_eq!(get_opt_category(&mut SnapReader::new(&buf)).unwrap(), c);
        }
        assert!(get_opt_category(&mut SnapReader::new(&[9])).is_err());
    }

    #[test]
    fn oir_roundtrips() {
        let oir = Oir {
            entry: Some(OirEntry {
                addr: InstrAddr::new(0x1004),
                idx: InstrIdx::new(1),
                mispredicted: true,
                flush: false,
                exception: false,
            }),
        };
        let mut buf = Vec::new();
        put_oir(&mut buf, &oir);
        assert_eq!(get_oir(&mut SnapReader::new(&buf), 2).unwrap(), oir);
        assert!(get_oir(&mut SnapReader::new(&buf), 1).is_err());
    }
}
