//! Hardware and sampling overhead analysis (Section 3.2 of the paper).
//!
//! These are closed-form models, reproduced exactly from the paper's
//! arithmetic: TIP's storage is one OIR (8 B address + 3 flag bits, 9 B)
//! plus `commit_width + 2` 64-bit CSRs (cycle, flags, and one address per
//! bank) — 57 B for the 4-wide BOOM. Per-sample data sizes combine perf's
//! 40 B of kernel metadata with the profiler's CSR payload; Oracle-style
//! tracing emits a bank view every cycle, which is what makes it impractical
//! (179 GB/s at 3.2 GHz).

/// Bytes of perf kernel metadata per sample (core/process/thread ids, ...).
pub const PERF_METADATA_BYTES: u64 = 40;

/// TIP's dedicated storage in bytes for a core committing `commit_width`
/// instructions per cycle: the OIR (9 B) plus `commit_width + 2` 64-bit
/// CSRs. 57 B for the paper's 4-wide core.
#[must_use]
pub fn tip_storage_bytes(commit_width: u64) -> u64 {
    9 + 8 * (commit_width + 2)
}

/// Bytes per TIP sample as perf records it: 40 B metadata + `commit_width`
/// addresses + cycle CSR + flags CSR. 88 B for the 4-wide core.
#[must_use]
pub fn tip_sample_bytes(commit_width: u64) -> u64 {
    PERF_METADATA_BYTES + 8 * commit_width + 8 + 8
}

/// Bytes per sample for the non-ILP-aware profilers (NCI, LCI, ...): 40 B
/// metadata + one address + the cycle counter = 56 B.
#[must_use]
pub fn non_ilp_sample_bytes() -> u64 {
    PERF_METADATA_BYTES + 8 + 8
}

/// TIP's raw CSR payload per sample (without perf metadata): the figure the
/// abstract's 192 KB/s at 4 kHz refers to (48 B for the 4-wide core).
#[must_use]
pub fn tip_payload_bytes(commit_width: u64) -> u64 {
    8 * commit_width + 8 + 8
}

/// Bytes per cycle an Oracle-style full trace must emit: one address and
/// flag set per ROB bank plus the head/tail bookkeeping — 56 B/cycle for the
/// 4-wide core, matching the paper's 179 GB/s at 3.2 GHz.
#[must_use]
pub fn oracle_bytes_per_cycle(commit_width: u64) -> u64 {
    8 * commit_width + 24
}

/// Data rate in bytes/second of a sampled profiler.
#[must_use]
pub fn sample_data_rate(bytes_per_sample: u64, freq_hz: f64) -> f64 {
    bytes_per_sample as f64 * freq_hz
}

/// Data rate in bytes/second of Oracle-style per-cycle tracing.
#[must_use]
pub fn oracle_data_rate(commit_width: u64, clock_ghz: f64) -> f64 {
    oracle_bytes_per_cycle(commit_width) as f64 * clock_ghz * 1e9
}

/// A simple sampling-overhead model: each sample costs a fixed interrupt
/// plus a per-byte copy. Calibrated so PEBS-sized samples at 4 kHz cost
/// about 1.0% and TIP-sized samples about 1.1%, as measured in the paper on
/// an i7-4770.
#[must_use]
pub fn runtime_overhead_fraction(bytes_per_sample: u64, freq_hz: f64, clock_ghz: f64) -> f64 {
    const INTERRUPT_CYCLES: f64 = 7_600.0;
    const CYCLES_PER_BYTE: f64 = 6.0;
    let cycles_per_sample = INTERRUPT_CYCLES + CYCLES_PER_BYTE * bytes_per_sample as f64;
    (cycles_per_sample * freq_hz) / (clock_ghz * 1e9)
}

/// The Section 3.2 alternative: TIP writes samples to a memory buffer and
/// interrupts only when the buffer fills. Fewer interrupts, but each one
/// copies `buffer_entries` samples — "the total time spent copying samples
/// is similar", as the paper notes.
#[must_use]
pub fn runtime_overhead_fraction_buffered(
    bytes_per_sample: u64,
    freq_hz: f64,
    clock_ghz: f64,
    buffer_entries: u64,
) -> f64 {
    const INTERRUPT_CYCLES: f64 = 7_600.0;
    const CYCLES_PER_BYTE: f64 = 6.0;
    let entries = buffer_entries.max(1) as f64;
    let interrupts_per_sec = freq_hz / entries;
    let cycles_per_interrupt =
        INTERRUPT_CYCLES + CYCLES_PER_BYTE * bytes_per_sample as f64 * entries;
    (cycles_per_interrupt * interrupts_per_sec) / (clock_ghz * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_paper_57_bytes() {
        assert_eq!(tip_storage_bytes(4), 57, "9 B OIR + six 8 B CSRs");
    }

    #[test]
    fn sample_sizes_match_section_3_2() {
        assert_eq!(tip_sample_bytes(4), 88);
        assert_eq!(non_ilp_sample_bytes(), 56);
        assert_eq!(tip_payload_bytes(4), 48);
    }

    #[test]
    fn data_rates_match_paper() {
        // 352 KB/s for TIP and 224 KB/s for non-ILP profilers at 4 kHz.
        assert!((sample_data_rate(tip_sample_bytes(4), 4_000.0) - 352_000.0).abs() < 1.0);
        assert!((sample_data_rate(non_ilp_sample_bytes(), 4_000.0) - 224_000.0).abs() < 1.0);
        // 192 KB/s raw CSR payload (the abstract's number).
        assert!((sample_data_rate(tip_payload_bytes(4), 4_000.0) - 192_000.0).abs() < 1.0);
        // 179 GB/s for Oracle tracing at 3.2 GHz.
        let oracle = oracle_data_rate(4, 3.2);
        assert!((oracle - 179.2e9).abs() < 0.1e9, "got {oracle:.3e}");
    }

    #[test]
    fn overhead_model_is_calibrated() {
        let pebs = runtime_overhead_fraction(non_ilp_sample_bytes(), 4_000.0, 3.2);
        let tip = runtime_overhead_fraction(tip_sample_bytes(4), 4_000.0, 3.2);
        assert!(
            (0.008..0.012).contains(&pebs),
            "PEBS-sized ~1.0%, got {pebs:.4}"
        );
        assert!(
            (0.009..0.013).contains(&tip),
            "TIP-sized ~1.1%, got {tip:.4}"
        );
        assert!(tip > pebs);
    }

    #[test]
    fn buffering_amortizes_interrupts_but_not_copies() {
        let unbuffered = runtime_overhead_fraction(tip_sample_bytes(4), 4_000.0, 3.2);
        let buffered = runtime_overhead_fraction_buffered(tip_sample_bytes(4), 4_000.0, 3.2, 64);
        // Fewer interrupts help a little...
        assert!(buffered < unbuffered);
        // ...but the copy cost stays, so the totals are similar (the paper's
        // observation): within 2x, not orders of magnitude.
        assert!(buffered > unbuffered / 20.0);
        // Degenerate buffer of one entry equals the unbuffered model.
        let one = runtime_overhead_fraction_buffered(tip_sample_bytes(4), 4_000.0, 3.2, 1);
        assert!((one - unbuffered).abs() < 1e-12);
    }

    #[test]
    fn oracle_rate_is_orders_of_magnitude_larger() {
        let ratio = oracle_data_rate(4, 3.2) / sample_data_rate(tip_sample_bytes(4), 4_000.0);
        assert!(
            ratio > 1e5,
            "Oracle tracing must dwarf sampling, ratio {ratio:.1e}"
        );
    }
}
