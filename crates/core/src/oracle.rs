//! The Oracle profiler: the golden reference for performance profiling.
//!
//! Oracle is time-proportional by construction: it accounts *every* clock
//! cycle to the instruction(s) whose latency the processor exposes in that
//! cycle (Section 2.2 of the paper):
//!
//! - **Computing**: 1/n of the cycle to each of the n committing
//!   instructions,
//! - **Stalled**: the full cycle to the instruction blocking the ROB head,
//! - **Flushed**: the full cycle to the instruction that emptied the ROB
//!   (mispredicted branch, CSR flush, or excepting instruction),
//! - **Drained**: the full cycle to the first instruction to enter the ROB
//!   after the front-end stall.
//!
//! It also produces the commit-stage cycle stacks of Figure 7 and the
//! per-function time breakdowns of Figure 13, since it knows the exact
//! category of every cycle.

use crate::category::{classify, CommitState, CycleCategory, Oir, NUM_CATEGORIES};
use crate::profile::{DeltaTracker, Profile, ProfileDelta, UNITS_PER_CYCLE};
use crate::snapshot::{get_oir, put_oir};
use serde::{Deserialize, Serialize};
use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::{Granularity, InstrIdx, Program, SymbolId};
use tip_ooo::{CycleRecord, TraceSink};

/// Per-category cycle totals (a cycle stack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleStack {
    totals: [f64; NUM_CATEGORIES],
}

impl CycleStack {
    /// Cycles in `category`.
    #[must_use]
    pub fn get(&self, category: CycleCategory) -> f64 {
        self.totals[category as usize]
    }

    /// Adds cycles to a category.
    pub fn add(&mut self, category: CycleCategory, cycles: f64) {
        self.totals[category as usize] += cycles;
    }

    /// Total cycles across categories.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.totals.iter().sum()
    }

    /// The stack normalized to fractions (zeros if empty).
    #[must_use]
    pub fn normalized(&self) -> [f64; NUM_CATEGORIES] {
        let t = self.total();
        if t <= 0.0 {
            return [0.0; NUM_CATEGORIES];
        }
        let mut out = self.totals;
        for x in &mut out {
            *x /= t;
        }
        out
    }
}

/// The completed output of an Oracle run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleResult {
    /// Cycles attributed to each static instruction.
    per_instr: Vec<f64>,
    /// Per-instruction, per-category cycles (drives Figures 7, 12, 13).
    per_instr_category: Vec<[f64; NUM_CATEGORIES]>,
    /// Total cycles observed.
    total_cycles: u64,
}

impl OracleResult {
    /// Cycles attributed to each instruction, indexed by instruction index.
    #[must_use]
    pub fn per_instr(&self) -> &[f64] {
        &self.per_instr
    }

    /// Total cycles accounted.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// The Oracle profile at `granularity`.
    #[must_use]
    pub fn profile(&self, program: &Program, granularity: Granularity) -> Profile {
        Profile::from_instr_cycles(&self.per_instr, &program.symbol_map(granularity))
    }

    /// The whole-program cycle stack (Figure 7).
    #[must_use]
    pub fn cycle_stack(&self) -> CycleStack {
        let mut stack = CycleStack::default();
        for per_cat in &self.per_instr_category {
            for (i, &cycles) in per_cat.iter().enumerate() {
                stack.totals[i] += cycles;
            }
        }
        stack
    }

    /// The cycle stack restricted to one symbol at `granularity`
    /// (Figure 13's per-function time breakdown).
    #[must_use]
    pub fn symbol_stack(
        &self,
        program: &Program,
        granularity: Granularity,
        symbol: SymbolId,
    ) -> CycleStack {
        let mut stack = CycleStack::default();
        for (i, per_cat) in self.per_instr_category.iter().enumerate() {
            if program.symbol_of(InstrIdx::new(i as u32), granularity) == symbol {
                for (c, &cycles) in per_cat.iter().enumerate() {
                    stack.totals[c] += cycles;
                }
            }
        }
        stack
    }

    /// Per-instruction cycles within one category.
    #[must_use]
    pub fn per_instr_in_category(&self, category: CycleCategory) -> Vec<f64> {
        self.per_instr_category
            .iter()
            .map(|c| c[category as usize])
            .collect()
    }
}

/// The Oracle profiler: attach as a [`TraceSink`] (usually via
/// [`crate::ProfilerBank`]), then call [`finish`](OracleProfiler::finish).
#[derive(Debug, Clone)]
pub struct OracleProfiler {
    per_instr: Vec<f64>,
    per_instr_category: Vec<[f64; NUM_CATEGORIES]>,
    oir: Oir,
    /// Cycles waiting for the first instruction to enter the ROB (Drained
    /// state, plus cold start).
    pending_drained: f64,
    total_cycles: u64,
    /// Streaming watermark (per-symbol units last reported). Not part of
    /// any snapshot: restores reset it and the next flush re-reports the
    /// full cumulative profile.
    tracker: DeltaTracker,
    /// Streaming watermark for the cycle stack (per-category units).
    last_stack_units: Vec<i64>,
}

impl OracleProfiler {
    /// Creates an Oracle for a program with `num_instrs` static instructions.
    #[must_use]
    pub fn new(num_instrs: usize) -> Self {
        OracleProfiler {
            per_instr: vec![0.0; num_instrs],
            per_instr_category: vec![[0.0; NUM_CATEGORIES]; num_instrs],
            oir: Oir::default(),
            pending_drained: 0.0,
            total_cycles: 0,
            tracker: DeltaTracker::new(),
            last_stack_units: Vec::new(),
        }
    }

    /// Emits the streaming increment of the Oracle's profile at `map`'s
    /// granularity since the last flush (see
    /// [`SampledProfiler::flush_delta`](crate::SampledProfiler::flush_delta)
    /// — same contract, but the Oracle accumulates per-instruction cycles
    /// directly instead of samples).
    pub fn flush_delta(&mut self, map: &tip_isa::SymbolMap) -> ProfileDelta {
        let profile = Profile::from_instr_cycles(&self.per_instr, map);
        self.tracker.flush_profile(&profile)
    }

    /// Emits the streaming increment of the whole-program cycle stack:
    /// per-category units (1/[`UNITS_PER_CYCLE`] cycle each) accumulated
    /// since the last flush.
    pub fn flush_stack_delta(&mut self) -> Vec<i64> {
        let mut totals = [0.0f64; NUM_CATEGORIES];
        for per_cat in &self.per_instr_category {
            for (i, &cycles) in per_cat.iter().enumerate() {
                totals[i] += cycles;
            }
        }
        let units: Vec<i64> = totals
            .iter()
            .map(|&t| (t * UNITS_PER_CYCLE as f64).round() as i64)
            .collect();
        let delta: Vec<i64> = units
            .iter()
            .enumerate()
            .map(|(i, &u)| u - self.last_stack_units.get(i).copied().unwrap_or(0))
            .collect();
        self.last_stack_units = units;
        delta
    }

    fn attribute(&mut self, idx: InstrIdx, category: CycleCategory, cycles: f64) {
        self.per_instr[idx.index()] += cycles;
        self.per_instr_category[idx.index()][category as usize] += cycles;
    }

    /// Resolves pending drained cycles onto the first instruction that
    /// entered the ROB.
    fn resolve_drained(&mut self, idx: InstrIdx) {
        if self.pending_drained > 0.0 {
            let cycles = std::mem::take(&mut self.pending_drained);
            self.attribute(idx, CycleCategory::FrontEnd, cycles);
        }
    }

    /// Serializes the accumulated attribution state for a checkpoint.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_len(out, self.per_instr.len());
        for &c in &self.per_instr {
            snap::put_f64(out, c);
        }
        for per_cat in &self.per_instr_category {
            for &c in per_cat {
                snap::put_f64(out, c);
            }
        }
        put_oir(out, &self.oir);
        snap::put_f64(out, self.pending_drained);
        snap::put_u64(out, self.total_cycles);
    }

    /// Restores an Oracle captured by [`Self::snapshot_into`] for a program
    /// with `num_instrs` static instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is damaged or was captured
    /// for a program of a different size.
    pub fn restore(num_instrs: usize, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_of(8)?;
        if n != num_instrs {
            return Err(SnapError::Malformed("oracle sized for another program"));
        }
        let mut per_instr = Vec::with_capacity(n);
        for _ in 0..n {
            per_instr.push(r.f64()?);
        }
        let mut per_instr_category = Vec::with_capacity(n);
        for _ in 0..n {
            let mut per_cat = [0.0; NUM_CATEGORIES];
            for c in &mut per_cat {
                *c = r.f64()?;
            }
            per_instr_category.push(per_cat);
        }
        Ok(OracleProfiler {
            per_instr,
            per_instr_category,
            oir: get_oir(r, num_instrs)?,
            pending_drained: r.f64()?,
            total_cycles: r.u64()?,
            tracker: DeltaTracker::new(),
            last_stack_units: Vec::new(),
        })
    }

    /// Consumes the profiler, producing the result. Unresolved drained
    /// cycles at the very end of the run are dropped (there is no
    /// instruction to blame).
    #[must_use]
    pub fn finish(self) -> OracleResult {
        OracleResult {
            per_instr: self.per_instr,
            per_instr_category: self.per_instr_category,
            total_cycles: self.total_cycles,
        }
    }
}

impl TraceSink for OracleProfiler {
    fn on_cycle(&mut self, record: &CycleRecord) {
        self.total_cycles += 1;
        match classify(record, &self.oir) {
            CommitState::Computing => {
                // The first committing instruction also resolves any drain
                // (it was the first to enter the ROB). This only happens when
                // dispatch-to-commit happened faster than a record boundary.
                if let Some(first) = record.committed_iter().next() {
                    let first_idx = first.idx;
                    self.resolve_drained(first_idx);
                }
                let n = record.n_committed as f64;
                // Collect indices first to appease the borrow checker.
                let mut idxs = [InstrIdx::new(0); tip_ooo::MAX_COMMIT];
                for (i, c) in record.committed_iter().enumerate() {
                    idxs[i] = c.idx;
                }
                for &idx in idxs.iter().take(record.n_committed as usize) {
                    self.attribute(idx, CycleCategory::Execution, 1.0 / n);
                }
            }
            CommitState::Stalled { idx, kind } => {
                self.resolve_drained(idx);
                self.attribute(idx, CycleCategory::stall_for(kind), 1.0);
            }
            CommitState::Flushed { idx, category } => {
                self.attribute(idx, category, 1.0);
            }
            CommitState::Drained | CommitState::ColdStart => {
                self.pending_drained += 1.0;
            }
        }
        self.oir.update(record);
    }
}

/// Builds per-symbol cycle stacks from *sampled* data (TIP's category-labelled
/// samples), the way perf post-processing would — Section 3.1's "combining
/// the status flags with analysis of the application binary".
///
/// Returns one [`CycleStack`] per symbol at the map's granularity. Samples
/// without a category (profilers other than TIP) are ignored.
#[must_use]
pub fn sampled_symbol_stacks(
    samples: &[crate::sample::Sample],
    map: &tip_isa::SymbolMap,
) -> Vec<CycleStack> {
    let mut stacks = vec![CycleStack::default(); map.num_symbols()];
    for s in samples {
        let Some(category) = s.category else { continue };
        for &(idx, frac) in &s.targets {
            stacks[map.symbol(idx).0 as usize].add(category, s.weight_cycles * frac);
        }
    }
    stacks
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::{InstrAddr, InstrKind};
    use tip_ooo::{CommitView, HeadView};

    fn commit(cycle: u64, idxs: &[u32]) -> CycleRecord {
        let mut r = CycleRecord::empty(cycle);
        for (i, &idx) in idxs.iter().enumerate() {
            r.committed[i] = CommitView {
                addr: InstrAddr::new(0x1000 + 4 * u64::from(idx)),
                idx: InstrIdx::new(idx),
                kind: InstrKind::IntAlu,
                mispredicted: false,
                flush: false,
            };
        }
        r.n_committed = idxs.len() as u8;
        r.rob_len = 0;
        r
    }

    fn stalled(cycle: u64, idx: u32, kind: InstrKind) -> CycleRecord {
        let mut r = CycleRecord::empty(cycle);
        r.rob_len = 4;
        r.head = Some(HeadView {
            addr: InstrAddr::new(0x1000 + 4 * u64::from(idx)),
            idx: InstrIdx::new(idx),
            kind,
            executed: false,
        });
        r
    }

    #[test]
    fn computing_splits_cycle_across_committers() {
        let mut o = OracleProfiler::new(4);
        o.on_cycle(&commit(0, &[0, 1]));
        o.on_cycle(&commit(1, &[2]));
        let r = o.finish();
        assert!((r.per_instr()[0] - 0.5).abs() < 1e-12);
        assert!((r.per_instr()[1] - 0.5).abs() < 1e-12);
        assert!((r.per_instr()[2] - 1.0).abs() < 1e-12);
        assert_eq!(r.total_cycles(), 2);
        let stack = r.cycle_stack();
        assert!((stack.get(CycleCategory::Execution) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stall_goes_to_head_instruction() {
        let mut o = OracleProfiler::new(4);
        o.on_cycle(&commit(0, &[0]));
        for c in 1..=40 {
            o.on_cycle(&stalled(c, 1, InstrKind::Load));
        }
        o.on_cycle(&commit(41, &[1, 2]));
        let r = o.finish();
        assert!(
            (r.per_instr()[1] - 40.5).abs() < 1e-12,
            "40 stall + 0.5 commit"
        );
        let stack = r.cycle_stack();
        assert!((stack.get(CycleCategory::LoadStall) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn flush_cycles_go_to_mispredicted_branch() {
        // Mirrors Figure 4c: branch commits (with mispredict flag), ROB
        // empty 4 cycles, then the target stalls one cycle and commits.
        let mut o = OracleProfiler::new(8);
        let mut r = commit(0, &[0]);
        r.committed[1] = CommitView {
            addr: InstrAddr::new(0x1004),
            idx: InstrIdx::new(1),
            kind: InstrKind::Branch,
            mispredicted: true,
            flush: false,
        };
        r.n_committed = 2;
        o.on_cycle(&r);
        for c in 1..=4 {
            o.on_cycle(&CycleRecord::empty(c));
        }
        o.on_cycle(&stalled(5, 4, InstrKind::IntAlu));
        o.on_cycle(&commit(6, &[4]));
        let r = o.finish();
        assert!(
            (r.per_instr()[1] - 4.5).abs() < 1e-12,
            "0.5 commit + 4 flush cycles"
        );
        assert!((r.per_instr()[4] - 2.0).abs() < 1e-12, "1 stall + 1 commit");
        let stack = r.cycle_stack();
        assert!((stack.get(CycleCategory::Mispredict) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn drained_cycles_go_to_first_entering_instruction() {
        // Mirrors Figure 4d: I1, I2 commit; ROB empty for 3 cycles due to an
        // I-cache miss; I3 then stalls at the head and commits.
        let mut o = OracleProfiler::new(8);
        o.on_cycle(&commit(0, &[1, 2]));
        for c in 1..=3 {
            o.on_cycle(&CycleRecord::empty(c));
        }
        o.on_cycle(&stalled(4, 3, InstrKind::IntAlu));
        o.on_cycle(&commit(5, &[3]));
        let r = o.finish();
        assert!(
            (r.per_instr()[3] - 5.0).abs() < 1e-12,
            "3 drain + 1 stall + 1 commit"
        );
        let stack = r.cycle_stack();
        assert!((stack.get(CycleCategory::FrontEnd) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exception_cycles_go_to_faulting_load() {
        let mut o = OracleProfiler::new(8);
        o.on_cycle(&commit(0, &[0]));
        // Exception fires (ROB squashed).
        let mut r = CycleRecord::empty(1);
        r.exception = Some((InstrAddr::new(0x1008), InstrIdx::new(2)));
        o.on_cycle(&r);
        // Handler not yet dispatched.
        o.on_cycle(&CycleRecord::empty(2));
        o.on_cycle(&CycleRecord::empty(3));
        // Handler dispatches and stalls.
        o.on_cycle(&stalled(4, 5, InstrKind::IntAlu));
        let r = o.finish();
        assert!(
            (r.per_instr()[2] - 3.0).abs() < 1e-12,
            "exception + empty cycles"
        );
        let stack = r.cycle_stack();
        assert!((stack.get(CycleCategory::MiscFlush) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn every_cycle_is_accounted() {
        // Accounting conservation: attributed + pending == total.
        let mut o = OracleProfiler::new(8);
        o.on_cycle(&commit(0, &[0, 1, 2, 3]));
        o.on_cycle(&stalled(1, 4, InstrKind::Store));
        o.on_cycle(&CycleRecord::empty(2)); // drained
        o.on_cycle(&stalled(3, 5, InstrKind::IntAlu)); // resolves drain
        let r = o.finish();
        let attributed: f64 = r.per_instr().iter().sum();
        assert!((attributed - 4.0).abs() < 1e-12);
        assert_eq!(r.total_cycles(), 4);
    }

    #[test]
    fn csr_flush_is_misc_flush_category() {
        let mut o = OracleProfiler::new(4);
        let mut r = CycleRecord::empty(0);
        r.committed[0] = CommitView {
            addr: InstrAddr::new(0x1000),
            idx: InstrIdx::new(0),
            kind: InstrKind::CsrFlush,
            mispredicted: false,
            flush: true,
        };
        r.n_committed = 1;
        o.on_cycle(&r);
        o.on_cycle(&CycleRecord::empty(1));
        o.on_cycle(&CycleRecord::empty(2));
        let res = o.finish();
        assert!((res.per_instr()[0] - 3.0).abs() < 1e-12);
        assert!((res.cycle_stack().get(CycleCategory::MiscFlush) - 2.0).abs() < 1e-12);
    }
}
