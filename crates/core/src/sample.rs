//! Resolved profiler samples.

use crate::category::CycleCategory;
use serde::{Deserialize, Serialize};
use tip_isa::InstrIdx;

/// One resolved sample: the instruction(s) a profiler attributed the sample
/// cycle to.
///
/// `targets` holds `(instruction, fraction)` pairs whose fractions sum to 1
/// (ILP-aware profilers split a sample across co-committing instructions).
/// `weight_cycles` is the length of the sampling interval the sample stands
/// for; it is filled in by the [`crate::ProfilerBank`] when the run
/// finishes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The cycle the sample was triggered at.
    pub cycle: u64,
    /// Cycles this sample represents (the interval since the previous one).
    pub weight_cycles: f64,
    /// Attributed instructions with their fractions (sum to 1).
    pub targets: Vec<(InstrIdx, f64)>,
    /// The cycle category the profiler labelled this sample with, when the
    /// profiler exposes one (TIP does via its flags CSR; see Section 3.1).
    pub category: Option<CycleCategory>,
}

impl Sample {
    /// A sample attributing everything to one instruction.
    #[must_use]
    pub fn single(cycle: u64, idx: InstrIdx, category: Option<CycleCategory>) -> Self {
        Sample {
            cycle,
            weight_cycles: 0.0,
            targets: vec![(idx, 1.0)],
            category,
        }
    }

    /// A sample split evenly across `targets` (ILP-aware attribution).
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    #[must_use]
    pub fn split(cycle: u64, targets: &[InstrIdx], category: Option<CycleCategory>) -> Self {
        assert!(!targets.is_empty(), "a sample needs at least one target");
        let frac = 1.0 / targets.len() as f64;
        Sample {
            cycle,
            weight_cycles: 0.0,
            targets: targets.iter().map(|&t| (t, frac)).collect(),
            category,
        }
    }
}

/// Sorts samples by trigger cycle and weights each by the interval since
/// the previous one (the first sample also covers its own cycle 0..=cycle,
/// hence the `+1`). This is the whole-run weighting [`crate::ProfilerBank`]
/// applies when a run finishes; the streaming path reuses it verbatim so
/// mid-run flushes quantize exactly the same cumulative profile.
pub fn weight_by_intervals(samples: &mut Vec<Sample>) {
    samples.sort_by_key(|x| x.cycle);
    let mut prev = 0u64;
    for sample in samples {
        sample.weight_cycles = (sample.cycle - prev) as f64 + if prev == 0 { 1.0 } else { 0.0 };
        prev = sample.cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_fractions_sum_to_one() {
        let s = Sample::split(
            10,
            &[InstrIdx::new(0), InstrIdx::new(1), InstrIdx::new(2)],
            None,
        );
        let sum: f64 = s.targets.iter().map(|t| t.1).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_has_one_target() {
        let s = Sample::single(5, InstrIdx::new(7), Some(CycleCategory::Execution));
        assert_eq!(s.targets, vec![(InstrIdx::new(7), 1.0)]);
        assert_eq!(s.category, Some(CycleCategory::Execution));
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_split_panics() {
        let _ = Sample::split(0, &[], None);
    }
}
