//! The Time-Proportional Instruction Profiler (TIP) and its hardware model.
//!
//! TIP applies the Oracle's attribution policies at statistically sampled
//! cycles using a small hardware unit sitting between the PMU and the ROB
//! (Figures 5 and 6 of the paper): an Offending Instruction Register (OIR)
//! that continuously latches the youngest committing (or excepting)
//! instruction with its flags, a sample-selection unit that snapshots the
//! head ROB column into per-bank address CSRs, and a flags CSR
//! (Stalled / Mispredicted / Flush / Exception / Front-end).
//!
//! This module models those registers explicitly ([`TipRegisters`]) and then
//! post-processes them into samples, exactly as perf-style software would
//! (Section 3.1): Computing samples split 1/n across the valid addresses,
//! Stalled samples go to the Oldest-ID address, Flushed samples to the OIR
//! address, and Drained (Front-end) samples to the first instruction
//! dispatched after the stall — the address CSR's write-enable stays
//! asserted until that dispatch happens.

use super::SampledProfiler;
use crate::category::{CycleCategory, Oir};
use crate::profile::{DeltaTracker, ProfileDelta};
use crate::sample::Sample;
use crate::snapshot::{get_idx, get_oir, get_samples, put_oir, put_samples};
use std::collections::VecDeque;
use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::{InstrAddr, InstrIdx};
use tip_ooo::{CycleRecord, MAX_COMMIT};

/// The TIP flags CSR (one bit per condition, merged into a single CSR as in
/// Section 3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TipFlags {
    /// No instruction committed in the sampled cycle (Stall state).
    pub stalled: bool,
    /// The ROB emptied because of a mispredicted branch.
    pub mispredicted: bool,
    /// The ROB emptied because of a flush-at-commit instruction.
    pub flush: bool,
    /// The ROB emptied because of an exception.
    pub exception: bool,
    /// The ROB drained because the front-end stopped delivering.
    pub frontend: bool,
}

impl TipFlags {
    /// Encodes the flags as the 64-bit CSR value software reads.
    #[must_use]
    pub fn encode(self) -> u64 {
        u64::from(self.stalled)
            | u64::from(self.mispredicted) << 1
            | u64::from(self.flush) << 2
            | u64::from(self.exception) << 3
            | u64::from(self.frontend) << 4
    }

    /// Decodes a CSR value.
    #[must_use]
    pub fn decode(raw: u64) -> Self {
        TipFlags {
            stalled: raw & 1 != 0,
            mispredicted: raw & 2 != 0,
            flush: raw & 4 != 0,
            exception: raw & 8 != 0,
            frontend: raw & 16 != 0,
        }
    }
}

/// The CSR bank a TIP sample exposes to software (Figure 5): the cycle
/// counter, flags, per-bank addresses with valid bits, and the Oldest-ID
/// register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TipRegisters {
    /// Cycle the sample was taken.
    pub cycle: u64,
    /// The flags CSR.
    pub flags: TipFlags,
    /// Per-ROB-bank instruction addresses.
    pub addrs: [InstrAddr; MAX_COMMIT],
    /// Per-bank valid bits (commit signals in the Computing state, entry
    /// valid signals in the Stall state).
    pub valid: [bool; MAX_COMMIT],
    /// Bank id of the oldest instruction.
    pub oldest: u8,
}

impl TipRegisters {
    fn empty(cycle: u64) -> Self {
        TipRegisters {
            cycle,
            flags: TipFlags::default(),
            addrs: [InstrAddr::new(0); MAX_COMMIT],
            valid: [false; MAX_COMMIT],
            oldest: 0,
        }
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_u64(out, self.cycle);
        snap::put_u64(out, self.flags.encode());
        for addr in self.addrs {
            snap::put_u64(out, addr.raw());
        }
        for v in self.valid {
            snap::put_bool(out, v);
        }
        snap::put_u8(out, self.oldest);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cycle = r.u64()?;
        let raw_flags = r.u64()?;
        if raw_flags >= 32 {
            return Err(SnapError::Malformed("TIP flags CSR"));
        }
        let mut regs = TipRegisters::empty(cycle);
        regs.flags = TipFlags::decode(raw_flags);
        for addr in &mut regs.addrs {
            *addr = InstrAddr::new(r.u64()?);
        }
        for v in &mut regs.valid {
            *v = r.bool()?;
        }
        regs.oldest = r.u8()?;
        if regs.oldest as usize >= MAX_COMMIT {
            return Err(SnapError::Malformed("oldest bank id"));
        }
        Ok(regs)
    }
}

/// A sample whose address CSRs are still write-enabled, waiting for the
/// first instruction to dispatch (Drained state).
#[derive(Debug, Clone, Copy)]
struct OpenSample {
    registers: TipRegisters,
}

/// What a Drained-state (Front-end) sample is attributed to.
///
/// The paper's TIP holds the address CSRs write-enabled until the first
/// instruction dispatches and attributes the sample to it (the instruction
/// the front-end stall delayed). The ablation attributes to the OIR's
/// last-committed instruction instead — hardware-simpler, but it blames the
/// *previous* instruction for the front-end's problem, LCI-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainedPolicy {
    /// Wait for the first dispatched instruction (the paper's design).
    #[default]
    FirstDispatched,
    /// Attribute to the last-committed instruction (ablation).
    LastCommitted,
}

/// TIP (and its ILP-oblivious ablation, TIP-ILP).
#[derive(Debug)]
pub struct Tip {
    ilp_aware: bool,
    drained_policy: DrainedPolicy,
    oir: Oir,
    resolved: Vec<Sample>,
    /// Samples waiting in the Front-end state for the next dispatch.
    open: VecDeque<OpenSample>,
    /// Instruction indices matching the last snapshot's address CSRs (the
    /// post-processing step would recover these from the binary).
    idx_of: [InstrIdx; MAX_COMMIT],
    kind_of: [tip_isa::InstrKind; MAX_COMMIT],
    tracker: DeltaTracker,
}

impl Tip {
    /// Creates TIP; `ilp_aware = false` gives the TIP-ILP ablation that
    /// attributes multi-commit samples to a single instruction.
    #[must_use]
    pub fn new(ilp_aware: bool) -> Self {
        Tip {
            ilp_aware,
            drained_policy: DrainedPolicy::FirstDispatched,
            oir: Oir::default(),
            resolved: Vec::new(),
            open: VecDeque::new(),
            idx_of: [InstrIdx::new(0); MAX_COMMIT],
            kind_of: [tip_isa::InstrKind::Nop; MAX_COMMIT],
            tracker: DeltaTracker::new(),
        }
    }

    /// Sets the Drained-state attribution policy (ablation knob; the default
    /// is the paper's design).
    #[must_use]
    pub fn with_drained_policy(mut self, policy: DrainedPolicy) -> Self {
        self.drained_policy = policy;
        self
    }

    /// The sample-selection unit (Figure 6): snapshot the commit stage into
    /// the CSR bank. Returns `None` registers fully formed except for the
    /// Drained case, where the sample stays open.
    fn select(&mut self, record: &CycleRecord) -> (TipRegisters, bool) {
        let mut regs = TipRegisters::empty(record.cycle);

        let any_valid = record.banks.iter().any(|b| b.valid);
        if any_valid {
            for (i, bank) in record.banks.iter().enumerate() {
                regs.addrs[i] = bank.addr;
                self.idx_of[i] = bank.idx;
                self.kind_of[i] = bank.kind;
                regs.valid[i] = if record.is_committing() {
                    bank.committing
                } else {
                    bank.valid
                };
            }
            regs.oldest = record.oldest_bank;
            regs.flags.stalled = !record.is_committing();
            return (regs, false);
        }

        // All head entries invalid: flushed or drained. The exception check
        // comes first (the OIR-update unit latches it in the same cycle).
        let oir_entry = if let Some((addr, idx)) = record.exception {
            regs.flags.exception = true;
            Some((addr, idx))
        } else if let Some(e) = self.oir.entry {
            regs.flags.mispredicted = e.mispredicted;
            regs.flags.flush = e.flush;
            regs.flags.exception = e.exception;
            Some((e.addr, e.idx))
        } else {
            None
        };

        if regs.flags.mispredicted || regs.flags.flush || regs.flags.exception {
            let (addr, idx) = oir_entry.expect("flagged OIR entry present");
            regs.addrs[0] = addr;
            self.idx_of[0] = idx;
            regs.valid[0] = true;
            regs.oldest = 0;
            (regs, false)
        } else {
            // Drained: Front-end flag set.
            regs.flags.frontend = true;
            match (self.drained_policy, oir_entry) {
                // Ablation: blame the last-committed instruction instead of
                // waiting for the first dispatch.
                (DrainedPolicy::LastCommitted, Some((addr, idx))) => {
                    regs.addrs[0] = addr;
                    self.idx_of[0] = idx;
                    regs.valid[0] = true;
                    regs.oldest = 0;
                    (regs, false)
                }
                // The paper's design: the address CSRs stay write-enabled
                // until the first instruction dispatches.
                _ => (regs, true),
            }
        }
    }

    /// Post-processing (Section 3.1): registers to an attributed sample.
    fn attribute(&self, regs: &TipRegisters) -> Sample {
        if regs.flags.frontend {
            // Resolved open sample: address 0 holds the first dispatched
            // instruction.
            return Sample::single(regs.cycle, self.idx_of[0], Some(CycleCategory::FrontEnd));
        }
        if regs.flags.mispredicted {
            return Sample::single(regs.cycle, self.idx_of[0], Some(CycleCategory::Mispredict));
        }
        if regs.flags.flush || regs.flags.exception {
            return Sample::single(regs.cycle, self.idx_of[0], Some(CycleCategory::MiscFlush));
        }
        if regs.flags.stalled {
            let oldest = regs.oldest as usize;
            let kind = self.kind_of[oldest];
            return Sample::single(
                regs.cycle,
                self.idx_of[oldest],
                Some(CycleCategory::stall_for(kind)),
            );
        }
        // Computing: split across the valid (committing) addresses.
        let targets: Vec<InstrIdx> = (0..MAX_COMMIT)
            .filter(|&i| regs.valid[i])
            .map(|i| self.idx_of[i])
            .collect();
        if self.ilp_aware {
            Sample::split(regs.cycle, &targets, Some(CycleCategory::Execution))
        } else {
            // TIP-ILP: a single instruction — the oldest committing one.
            let oldest = self.idx_of[regs.oldest as usize];
            Sample::single(regs.cycle, oldest, Some(CycleCategory::Execution))
        }
    }
}

impl Tip {
    /// Resolves open (Front-end) samples on the first dispatch: the head
    /// of the refilled ROB is the first instruction that entered it.
    #[inline]
    fn resolve_open(&mut self, record: &CycleRecord) {
        if !self.open.is_empty() {
            if let Some(head) = &record.head {
                while let Some(mut open) = self.open.pop_front() {
                    open.registers.addrs[0] = head.addr;
                    open.registers.valid[0] = true;
                    open.registers.oldest = 0;
                    self.idx_of[0] = head.idx;
                    self.resolved.push(self.attribute(&open.registers));
                }
            }
        }
    }
}

impl SampledProfiler for Tip {
    #[inline]
    fn latch(&mut self, record: &CycleRecord) {
        self.resolve_open(record);
        // The OIR-update unit runs every cycle regardless of sampling.
        self.oir.update(record);
    }

    fn on_sample(&mut self, record: &CycleRecord) {
        self.resolve_open(record);

        let (regs, open) = self.select(record);
        if open {
            self.open.push_back(OpenSample { registers: regs });
        } else {
            self.resolved.push(self.attribute(&regs));
        }

        // The OIR-update unit latches *after* sample selection, as in
        // `observe`'s historical ordering: the sampled cycle's own commits
        // become visible to the OIR only on the next cycle.
        self.oir.update(record);
    }

    fn drain_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.resolved)
    }

    fn flush_delta(&mut self, map: &tip_isa::SymbolMap) -> ProfileDelta {
        self.tracker.flush_samples(&self.resolved, map)
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_bool(out, self.ilp_aware);
        snap::put_bool(out, self.drained_policy == DrainedPolicy::LastCommitted);
        put_oir(out, &self.oir);
        put_samples(out, &self.resolved);
        snap::put_len(out, self.open.len());
        for open in &self.open {
            open.registers.snapshot_into(out);
        }
        for idx in self.idx_of {
            snap::put_u32(out, idx.raw());
        }
        for kind in self.kind_of {
            snap::put_kind(out, kind);
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>, num_instrs: usize) -> Result<(), SnapError> {
        if r.bool()? != self.ilp_aware {
            return Err(SnapError::Malformed("TIP variant mismatch"));
        }
        let last_committed = r.bool()?;
        if last_committed != (self.drained_policy == DrainedPolicy::LastCommitted) {
            return Err(SnapError::Malformed("TIP drained-policy mismatch"));
        }
        self.oir = get_oir(r, num_instrs)?;
        self.resolved = get_samples(r, num_instrs)?;
        let n = r.len()?;
        self.open = (0..n)
            .map(|_| {
                Ok(OpenSample {
                    registers: TipRegisters::restore(r)?,
                })
            })
            .collect::<Result<_, SnapError>>()?;
        for idx in &mut self.idx_of {
            *idx = get_idx(r, num_instrs)?;
        }
        for kind in &mut self.kind_of {
            *kind = snap::get_kind(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::InstrKind;
    use tip_ooo::{BankView, CommitView, HeadView};

    fn commit(cycle: u64, idxs: &[u32], mispredicted_last: bool, flush_last: bool) -> CycleRecord {
        let mut r = CycleRecord::empty(cycle);
        for (i, &idx) in idxs.iter().enumerate() {
            let last = i + 1 == idxs.len();
            let view = CommitView {
                addr: InstrAddr::new(0x1000 + 4 * u64::from(idx)),
                idx: InstrIdx::new(idx),
                kind: if last && flush_last {
                    InstrKind::CsrFlush
                } else {
                    InstrKind::IntAlu
                },
                mispredicted: last && mispredicted_last,
                flush: last && flush_last,
            };
            r.committed[i] = view;
            r.banks[i] = BankView {
                valid: true,
                committing: true,
                addr: view.addr,
                idx: view.idx,
                kind: view.kind,
            };
        }
        r.n_committed = idxs.len() as u8;
        r.oldest_bank = 0;
        r.rob_len = 0;
        r
    }

    fn stalled(cycle: u64, idx: u32, kind: InstrKind) -> CycleRecord {
        let mut r = CycleRecord::empty(cycle);
        r.rob_len = 2;
        let addr = InstrAddr::new(0x1000 + 4 * u64::from(idx));
        r.head = Some(HeadView {
            addr,
            idx: InstrIdx::new(idx),
            kind,
            executed: false,
        });
        r.banks[0] = BankView {
            valid: true,
            committing: false,
            addr,
            idx: InstrIdx::new(idx),
            kind,
        };
        r.oldest_bank = 0;
        r
    }

    #[test]
    fn computing_sample_splits_across_commits() {
        let mut tip = Tip::new(true);
        tip.observe(&commit(0, &[1, 2], false, false), true);
        let s = tip.drain_samples();
        assert_eq!(
            s[0].targets,
            vec![(InstrIdx::new(1), 0.5), (InstrIdx::new(2), 0.5)]
        );
        assert_eq!(s[0].category, Some(CycleCategory::Execution));
    }

    #[test]
    fn tip_ilp_picks_single_instruction() {
        let mut tip = Tip::new(false);
        tip.observe(&commit(0, &[1, 2], false, false), true);
        let s = tip.drain_samples();
        assert_eq!(s[0].targets, vec![(InstrIdx::new(1), 1.0)]);
    }

    #[test]
    fn stalled_sample_goes_to_oldest_with_stall_category() {
        let mut tip = Tip::new(true);
        tip.observe(&stalled(3, 7, InstrKind::Load), true);
        let s = tip.drain_samples();
        assert_eq!(s[0].targets, vec![(InstrIdx::new(7), 1.0)]);
        assert_eq!(s[0].category, Some(CycleCategory::LoadStall));
    }

    #[test]
    fn flushed_sample_uses_oir() {
        let mut tip = Tip::new(true);
        // A mispredicted branch commits, then the ROB is empty.
        tip.observe(&commit(0, &[5], true, false), false);
        tip.observe(&CycleRecord::empty(1), true);
        let s = tip.drain_samples();
        assert_eq!(s[0].targets, vec![(InstrIdx::new(5), 1.0)]);
        assert_eq!(s[0].category, Some(CycleCategory::Mispredict));
    }

    #[test]
    fn csr_flush_sample_is_misc_flush() {
        let mut tip = Tip::new(true);
        tip.observe(&commit(0, &[5], false, true), false);
        tip.observe(&CycleRecord::empty(1), true);
        let s = tip.drain_samples();
        assert_eq!(s[0].category, Some(CycleCategory::MiscFlush));
        assert_eq!(s[0].targets, vec![(InstrIdx::new(5), 1.0)]);
    }

    #[test]
    fn exception_sample_targets_excepting_instruction() {
        let mut tip = Tip::new(true);
        tip.observe(&commit(0, &[1], false, false), false);
        let mut r = CycleRecord::empty(1);
        r.exception = Some((InstrAddr::new(0x2000), InstrIdx::new(9)));
        tip.observe(&r, true);
        let s = tip.drain_samples();
        assert_eq!(s[0].targets, vec![(InstrIdx::new(9), 1.0)]);
        assert_eq!(s[0].category, Some(CycleCategory::MiscFlush));
    }

    #[test]
    fn drained_sample_waits_for_first_dispatch() {
        let mut tip = Tip::new(true);
        tip.observe(&commit(0, &[1], false, false), false);
        tip.observe(&CycleRecord::empty(1), true); // drained sample, open
        assert!(tip.drain_samples().is_empty());
        tip.observe(&CycleRecord::empty(2), false);
        tip.observe(&stalled(3, 12, InstrKind::IntAlu), false); // refill
        let s = tip.drain_samples();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].cycle, 1, "sample keeps its trigger cycle");
        assert_eq!(s[0].targets, vec![(InstrIdx::new(12), 1.0)]);
        assert_eq!(s[0].category, Some(CycleCategory::FrontEnd));
    }

    #[test]
    fn drained_ablation_blames_last_commit() {
        let mut tip = Tip::new(true).with_drained_policy(DrainedPolicy::LastCommitted);
        tip.observe(&commit(0, &[3], false, false), false);
        tip.observe(&CycleRecord::empty(1), true); // drained
        let s = tip.drain_samples();
        assert_eq!(s.len(), 1, "ablation resolves immediately");
        assert_eq!(
            s[0].targets,
            vec![(InstrIdx::new(3), 1.0)],
            "last-committed blamed"
        );
        assert_eq!(s[0].category, Some(CycleCategory::FrontEnd));
    }

    #[test]
    fn flags_encode_decode_roundtrip() {
        for bits in 0..32u64 {
            let f = TipFlags::decode(bits);
            assert_eq!(f.encode(), bits);
        }
    }

    #[test]
    fn storage_is_six_csrs_plus_oir() {
        // Section 3.2: cycle + flags + b address CSRs = 6 CSRs of 8 B for a
        // 4-wide core, plus the 9 B OIR = 57 B. Kept in sync with
        // crate::overhead.
        assert_eq!(crate::overhead::tip_storage_bytes(4), 57);
    }
}
