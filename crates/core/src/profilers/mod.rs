//! The sampled profilers evaluated in the paper.
//!
//! All profilers observe the same per-cycle commit-stage trace and are
//! triggered on the same sample cycles (by [`crate::ProfilerBank`]), so any
//! difference between their profiles is *systematic* attribution error —
//! the paper's methodology (Section 4).

mod simple;
mod tip;

pub use simple::{Dispatch, Lci, Nci, Software};
pub use tip::{DrainedPolicy, Tip, TipFlags, TipRegisters};

use crate::sample::Sample;
use serde::{Deserialize, Serialize};
use std::fmt;
use tip_isa::snap::{SnapError, SnapReader};
use tip_ooo::CycleRecord;

/// A statistical profiler driven by the commit-stage trace.
///
/// Implementations keep whatever running state their hardware would (e.g.
/// LCI's last-committed register, TIP's OIR) by observing every cycle, and
/// produce a [`Sample`] for every sampled cycle — possibly later, when the
/// needed event occurs (NCI waits for the next commit, TIP's Front-end state
/// waits for the next dispatch).
///
/// `Send` is a supertrait so a boxed profiler — and therefore a whole
/// [`crate::ProfilerBank`] — can move to an executor worker thread; an
/// implementation with thread-bound state (`Rc`, raw pointers) is rejected
/// at the trait boundary instead of at a distant `thread::scope`.
pub trait SampledProfiler: Send {
    /// Observes one cycle; `sampled` marks sample cycles.
    fn observe(&mut self, record: &CycleRecord, sampled: bool);

    /// Takes the samples resolved so far (in trigger order).
    fn drain_samples(&mut self) -> Vec<Sample>;

    /// Serializes the profiler's complete mid-run state (resolved samples,
    /// in-flight samples, hardware registers) for a checkpoint.
    fn snapshot_into(&self, out: &mut Vec<u8>);

    /// Restores state captured by [`snapshot_into`](Self::snapshot_into)
    /// into a freshly built profiler of the same kind, for a program with
    /// `num_instrs` static instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is damaged, names an
    /// instruction outside the program, or was captured from a different
    /// profiler variant.
    fn restore_from(&mut self, r: &mut SnapReader<'_>, num_instrs: usize) -> Result<(), SnapError>;
}

/// Identifies one of the evaluated profiling strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProfilerId {
    /// Interrupt-based profiling (Linux perf without hardware support):
    /// samples the instruction the front-end is fetching — skid.
    Software,
    /// Tag-at-dispatch (AMD IBS, Arm SPE, ProfileMe).
    Dispatch,
    /// Last-Committed Instruction (Arm CoreSight-style external monitors).
    Lci,
    /// Next-Committing Instruction (Intel PEBS).
    Nci,
    /// NCI made commit-parallelism-aware (the Figure 11c ablation).
    NciIlp,
    /// TIP without ILP accounting (the paper's TIP-ILP ablation).
    TipIlp,
    /// Time-Proportional Instruction Profiling (the paper's proposal).
    Tip,
    /// TIP with the Drained-state write-enable trick disabled: front-end
    /// samples blame the last-committed instruction instead of the first
    /// dispatched one (an ablation of the paper's design; not in
    /// [`ProfilerId::ALL`]).
    TipLastCommitDrain,
}

impl ProfilerId {
    /// All strategies in the order the paper's figures list them.
    pub const ALL: [ProfilerId; 7] = [
        ProfilerId::Software,
        ProfilerId::Dispatch,
        ProfilerId::Lci,
        ProfilerId::Nci,
        ProfilerId::NciIlp,
        ProfilerId::TipIlp,
        ProfilerId::Tip,
    ];

    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProfilerId::Software => "Software",
            ProfilerId::Dispatch => "Dispatch",
            ProfilerId::Lci => "LCI",
            ProfilerId::Nci => "NCI",
            ProfilerId::NciIlp => "NCI+ILP",
            ProfilerId::TipIlp => "TIP-ILP",
            ProfilerId::Tip => "TIP",
            ProfilerId::TipLastCommitDrain => "TIP-noWE",
        }
    }

    /// The stable one-byte tag identifying this kind in snapshots
    /// (append-only numbering; never reorder).
    pub(crate) fn tag(self) -> u8 {
        match self {
            ProfilerId::Software => 0,
            ProfilerId::Dispatch => 1,
            ProfilerId::Lci => 2,
            ProfilerId::Nci => 3,
            ProfilerId::NciIlp => 4,
            ProfilerId::TipIlp => 5,
            ProfilerId::Tip => 6,
            ProfilerId::TipLastCommitDrain => 7,
        }
    }

    /// The profiler kind a snapshot tag names, if any.
    pub(crate) fn from_tag(tag: u8) -> Option<ProfilerId> {
        match tag {
            0 => Some(ProfilerId::Software),
            1 => Some(ProfilerId::Dispatch),
            2 => Some(ProfilerId::Lci),
            3 => Some(ProfilerId::Nci),
            4 => Some(ProfilerId::NciIlp),
            5 => Some(ProfilerId::TipIlp),
            6 => Some(ProfilerId::Tip),
            7 => Some(ProfilerId::TipLastCommitDrain),
            _ => None,
        }
    }

    /// Builds a fresh profiler of this kind.
    #[must_use]
    pub fn build(self) -> Box<dyn SampledProfiler> {
        match self {
            ProfilerId::Software => Box::new(Software::new()),
            ProfilerId::Dispatch => Box::new(Dispatch::new()),
            ProfilerId::Lci => Box::new(Lci::new()),
            ProfilerId::Nci => Box::new(Nci::new(false)),
            ProfilerId::NciIlp => Box::new(Nci::new(true)),
            ProfilerId::TipIlp => Box::new(Tip::new(false)),
            ProfilerId::Tip => Box::new(Tip::new(true)),
            ProfilerId::TipLastCommitDrain => {
                Box::new(Tip::new(true).with_drained_policy(DrainedPolicy::LastCommitted))
            }
        }
    }
}

impl fmt::Display for ProfilerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProfilerId::Tip.label(), "TIP");
        assert_eq!(ProfilerId::TipIlp.label(), "TIP-ILP");
        assert_eq!(ProfilerId::NciIlp.label(), "NCI+ILP");
        assert_eq!(ProfilerId::ALL.len(), 7);
    }

    #[test]
    fn snapshot_tags_roundtrip() {
        for id in ProfilerId::ALL
            .into_iter()
            .chain([ProfilerId::TipLastCommitDrain])
        {
            assert_eq!(ProfilerId::from_tag(id.tag()), Some(id));
        }
        assert_eq!(ProfilerId::from_tag(8), None);
    }

    #[test]
    fn build_constructs_every_kind() {
        for id in ProfilerId::ALL
            .into_iter()
            .chain([ProfilerId::TipLastCommitDrain])
        {
            let mut p = id.build();
            p.observe(&CycleRecord::empty(0), false);
            assert!(p.drain_samples().is_empty());
        }
    }
}
