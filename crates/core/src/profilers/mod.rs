//! The sampled profilers evaluated in the paper.
//!
//! All profilers observe the same per-cycle commit-stage trace and are
//! triggered on the same sample cycles (by [`crate::ProfilerBank`]), so any
//! difference between their profiles is *systematic* attribution error —
//! the paper's methodology (Section 4).

mod simple;
mod tip;

pub use simple::{Dispatch, Lci, Nci, Software};
pub use tip::{DrainedPolicy, Tip, TipFlags, TipRegisters};

use crate::sample::Sample;
use serde::{Deserialize, Serialize};
use std::fmt;
use tip_isa::snap::{SnapError, SnapReader};
use tip_ooo::CycleRecord;

/// A statistical profiler driven by the commit-stage trace.
///
/// Implementations keep whatever running state their hardware would (e.g.
/// LCI's last-committed register, TIP's OIR) by observing every cycle, and
/// produce a [`Sample`] for every sampled cycle — possibly later, when the
/// needed event occurs (NCI waits for the next commit, TIP's Front-end state
/// waits for the next dispatch).
///
/// `Send` is a supertrait so a boxed profiler — and therefore a whole
/// [`crate::ProfilerBank`] — can move to an executor worker thread; an
/// implementation with thread-bound state (`Rc`, raw pointers) is rejected
/// at the trait boundary instead of at a distant `thread::scope`.
pub trait SampledProfiler: Send {
    /// Observes one *non-sampled* cycle: the cheap always-on state tracking
    /// a real implementation would keep in hardware registers (LCI's
    /// last-committed latch, NCI's pending-sample drain, TIP's OIR update).
    /// This is the only per-cycle cost a profiler pays on the
    /// [`crate::ProfilerBank`] fast path, so implementations keep it
    /// allocation-free and early-out as soon as the cycle is irrelevant.
    fn latch(&mut self, record: &CycleRecord);

    /// Observes one *sampled* cycle: full attribution work. Implementations
    /// embed this cycle's latch updates at the exact point the hardware
    /// would perform them, so a cycle is observed by `latch` *or*
    /// `on_sample`, never both.
    fn on_sample(&mut self, record: &CycleRecord);

    /// Observes one cycle; `sampled` marks sample cycles. Compatibility
    /// shim over the [`latch`](Self::latch) / [`on_sample`](Self::on_sample)
    /// split — also the reference semantics the
    /// [`crate::ProfilerBank`] fast path is equivalence-tested against.
    fn observe(&mut self, record: &CycleRecord, sampled: bool) {
        if sampled {
            self.on_sample(record);
        } else {
            self.latch(record);
        }
    }

    /// Takes the samples resolved so far (in trigger order).
    fn drain_samples(&mut self) -> Vec<Sample>;

    /// Emits the streaming increment since the last flush: the cumulative
    /// profile over every sample resolved so far (weighted exactly as the
    /// end of a run would weight it), quantized to integer units, minus
    /// what the previous flush reported. See [`crate::ProfileDelta`].
    ///
    /// Non-destructive with respect to [`drain_samples`](Self::drain_samples)
    /// — streaming observes, it never consumes — and excluded from
    /// [`snapshot_into`](Self::snapshot_into): after a restore the next
    /// flush re-reports the full cumulative profile. The default
    /// implementation reports nothing (for profilers without sample
    /// streams).
    fn flush_delta(&mut self, map: &tip_isa::SymbolMap) -> crate::profile::ProfileDelta {
        crate::profile::ProfileDelta::zero(map.granularity(), map.num_symbols() as u32)
    }

    /// Serializes the profiler's complete mid-run state (resolved samples,
    /// in-flight samples, hardware registers) for a checkpoint.
    fn snapshot_into(&self, out: &mut Vec<u8>);

    /// Restores state captured by [`snapshot_into`](Self::snapshot_into)
    /// into a freshly built profiler of the same kind, for a program with
    /// `num_instrs` static instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is damaged, names an
    /// instruction outside the program, or was captured from a different
    /// profiler variant.
    fn restore_from(&mut self, r: &mut SnapReader<'_>, num_instrs: usize) -> Result<(), SnapError>;
}

/// Identifies one of the evaluated profiling strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProfilerId {
    /// Interrupt-based profiling (Linux perf without hardware support):
    /// samples the instruction the front-end is fetching — skid.
    Software,
    /// Tag-at-dispatch (AMD IBS, Arm SPE, ProfileMe).
    Dispatch,
    /// Last-Committed Instruction (Arm CoreSight-style external monitors).
    Lci,
    /// Next-Committing Instruction (Intel PEBS).
    Nci,
    /// NCI made commit-parallelism-aware (the Figure 11c ablation).
    NciIlp,
    /// TIP without ILP accounting (the paper's TIP-ILP ablation).
    TipIlp,
    /// Time-Proportional Instruction Profiling (the paper's proposal).
    Tip,
    /// TIP with the Drained-state write-enable trick disabled: front-end
    /// samples blame the last-committed instruction instead of the first
    /// dispatched one (an ablation of the paper's design; not in
    /// [`ProfilerId::ALL`]).
    TipLastCommitDrain,
}

impl ProfilerId {
    /// All strategies in the order the paper's figures list them.
    pub const ALL: [ProfilerId; 7] = [
        ProfilerId::Software,
        ProfilerId::Dispatch,
        ProfilerId::Lci,
        ProfilerId::Nci,
        ProfilerId::NciIlp,
        ProfilerId::TipIlp,
        ProfilerId::Tip,
    ];

    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProfilerId::Software => "Software",
            ProfilerId::Dispatch => "Dispatch",
            ProfilerId::Lci => "LCI",
            ProfilerId::Nci => "NCI",
            ProfilerId::NciIlp => "NCI+ILP",
            ProfilerId::TipIlp => "TIP-ILP",
            ProfilerId::Tip => "TIP",
            ProfilerId::TipLastCommitDrain => "TIP-noWE",
        }
    }

    /// The stable one-byte tag identifying this kind in snapshots
    /// (append-only numbering; never reorder).
    pub(crate) fn tag(self) -> u8 {
        match self {
            ProfilerId::Software => 0,
            ProfilerId::Dispatch => 1,
            ProfilerId::Lci => 2,
            ProfilerId::Nci => 3,
            ProfilerId::NciIlp => 4,
            ProfilerId::TipIlp => 5,
            ProfilerId::Tip => 6,
            ProfilerId::TipLastCommitDrain => 7,
        }
    }

    /// The profiler kind a snapshot tag names, if any.
    pub(crate) fn from_tag(tag: u8) -> Option<ProfilerId> {
        match tag {
            0 => Some(ProfilerId::Software),
            1 => Some(ProfilerId::Dispatch),
            2 => Some(ProfilerId::Lci),
            3 => Some(ProfilerId::Nci),
            4 => Some(ProfilerId::NciIlp),
            5 => Some(ProfilerId::TipIlp),
            6 => Some(ProfilerId::Tip),
            7 => Some(ProfilerId::TipLastCommitDrain),
            _ => None,
        }
    }

    /// Builds a fresh profiler of this kind behind dynamic dispatch.
    #[must_use]
    pub fn build(self) -> Box<dyn SampledProfiler> {
        Box::new(self.build_static())
    }

    /// Builds a fresh profiler of this kind with *static* dispatch.
    ///
    /// [`crate::ProfilerBank`] stores these instead of boxed trait objects:
    /// the per-cycle `latch` fan-out is then a match over inlined bodies
    /// (each a few loads and an early-out) rather than seven indirect calls
    /// through separate heap allocations.
    #[must_use]
    pub fn build_static(self) -> AnyProfiler {
        match self {
            ProfilerId::Software => AnyProfiler::Software(Software::new()),
            ProfilerId::Dispatch => AnyProfiler::Dispatch(Dispatch::new()),
            ProfilerId::Lci => AnyProfiler::Lci(Lci::new()),
            ProfilerId::Nci => AnyProfiler::Nci(Nci::new(false)),
            ProfilerId::NciIlp => AnyProfiler::Nci(Nci::new(true)),
            ProfilerId::TipIlp => AnyProfiler::Tip(Tip::new(false)),
            ProfilerId::Tip => AnyProfiler::Tip(Tip::new(true)),
            ProfilerId::TipLastCommitDrain => {
                AnyProfiler::Tip(Tip::new(true).with_drained_policy(DrainedPolicy::LastCommitted))
            }
        }
    }
}

/// A sampled profiler with static dispatch: one variant per concrete
/// implementation ([`Nci`] and [`Tip`] cover several [`ProfilerId`]s via
/// construction flags). Exists purely so the hot per-cycle fan-out in
/// [`crate::ProfilerBank`] compiles to direct, inlinable calls; behaviour is
/// identical to the boxed form by construction.
#[allow(missing_docs)]
#[derive(Debug)]
pub enum AnyProfiler {
    Software(Software),
    Dispatch(Dispatch),
    Lci(Lci),
    Nci(Nci),
    Tip(Tip),
}

impl SampledProfiler for AnyProfiler {
    #[inline]
    fn latch(&mut self, record: &CycleRecord) {
        match self {
            AnyProfiler::Software(p) => p.latch(record),
            AnyProfiler::Dispatch(p) => p.latch(record),
            AnyProfiler::Lci(p) => p.latch(record),
            AnyProfiler::Nci(p) => p.latch(record),
            AnyProfiler::Tip(p) => p.latch(record),
        }
    }

    #[inline]
    fn on_sample(&mut self, record: &CycleRecord) {
        match self {
            AnyProfiler::Software(p) => p.on_sample(record),
            AnyProfiler::Dispatch(p) => p.on_sample(record),
            AnyProfiler::Lci(p) => p.on_sample(record),
            AnyProfiler::Nci(p) => p.on_sample(record),
            AnyProfiler::Tip(p) => p.on_sample(record),
        }
    }

    fn drain_samples(&mut self) -> Vec<Sample> {
        match self {
            AnyProfiler::Software(p) => p.drain_samples(),
            AnyProfiler::Dispatch(p) => p.drain_samples(),
            AnyProfiler::Lci(p) => p.drain_samples(),
            AnyProfiler::Nci(p) => p.drain_samples(),
            AnyProfiler::Tip(p) => p.drain_samples(),
        }
    }

    fn flush_delta(&mut self, map: &tip_isa::SymbolMap) -> crate::profile::ProfileDelta {
        match self {
            AnyProfiler::Software(p) => p.flush_delta(map),
            AnyProfiler::Dispatch(p) => p.flush_delta(map),
            AnyProfiler::Lci(p) => p.flush_delta(map),
            AnyProfiler::Nci(p) => p.flush_delta(map),
            AnyProfiler::Tip(p) => p.flush_delta(map),
        }
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        match self {
            AnyProfiler::Software(p) => p.snapshot_into(out),
            AnyProfiler::Dispatch(p) => p.snapshot_into(out),
            AnyProfiler::Lci(p) => p.snapshot_into(out),
            AnyProfiler::Nci(p) => p.snapshot_into(out),
            AnyProfiler::Tip(p) => p.snapshot_into(out),
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>, num_instrs: usize) -> Result<(), SnapError> {
        match self {
            AnyProfiler::Software(p) => p.restore_from(r, num_instrs),
            AnyProfiler::Dispatch(p) => p.restore_from(r, num_instrs),
            AnyProfiler::Lci(p) => p.restore_from(r, num_instrs),
            AnyProfiler::Nci(p) => p.restore_from(r, num_instrs),
            AnyProfiler::Tip(p) => p.restore_from(r, num_instrs),
        }
    }
}

impl fmt::Display for ProfilerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProfilerId::Tip.label(), "TIP");
        assert_eq!(ProfilerId::TipIlp.label(), "TIP-ILP");
        assert_eq!(ProfilerId::NciIlp.label(), "NCI+ILP");
        assert_eq!(ProfilerId::ALL.len(), 7);
    }

    #[test]
    fn snapshot_tags_roundtrip() {
        for id in ProfilerId::ALL
            .into_iter()
            .chain([ProfilerId::TipLastCommitDrain])
        {
            assert_eq!(ProfilerId::from_tag(id.tag()), Some(id));
        }
        assert_eq!(ProfilerId::from_tag(8), None);
    }

    #[test]
    fn build_constructs_every_kind() {
        for id in ProfilerId::ALL
            .into_iter()
            .chain([ProfilerId::TipLastCommitDrain])
        {
            let mut p = id.build();
            p.observe(&CycleRecord::empty(0), false);
            assert!(p.drain_samples().is_empty());
        }
    }
}
