//! The heuristic profilers of existing hardware: Software (interrupt skid),
//! Dispatch tagging (AMD IBS / Arm SPE), LCI (external monitors), and NCI
//! (Intel PEBS) with its commit-parallelism-aware variant.

use super::SampledProfiler;
use crate::profile::{DeltaTracker, ProfileDelta};
use crate::sample::Sample;
use crate::snapshot::{get_idx, get_samples, put_samples};
use std::collections::VecDeque;
use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::InstrIdx;
use tip_ooo::CycleRecord;

/// Serializes a queue of pending trigger cycles.
fn put_cycles(out: &mut Vec<u8>, cycles: impl IntoIterator<Item = u64>, len: usize) {
    snap::put_len(out, len);
    for c in cycles {
        snap::put_u64(out, c);
    }
}

/// Reads a queue of pending trigger cycles.
fn get_cycles<C: FromIterator<u64>>(r: &mut SnapReader<'_>) -> Result<C, SnapError> {
    let n = r.len_of(8)?;
    (0..n).map(|_| r.u64()).collect()
}

/// Software (interrupt-based) profiling, e.g. plain Linux perf.
///
/// On an interrupt the in-flight instructions drain and the handler records
/// the program counter execution will resume from — an instruction *being
/// fetched* around the sample, tens to hundreds of instructions past the one
/// the core was actually spending time on (skid, Section 2.1).
#[derive(Debug, Default)]
pub struct Software {
    resolved: Vec<Sample>,
    pending: VecDeque<u64>,
    tracker: DeltaTracker,
}

impl Software {
    /// Creates the profiler.
    #[must_use]
    pub fn new() -> Self {
        Software::default()
    }
}

impl SampledProfiler for Software {
    #[inline]
    fn latch(&mut self, record: &CycleRecord) {
        // Off-sample the handler only has work when an earlier interrupt is
        // still waiting for fetch to resume.
        if self.pending.is_empty() {
            return;
        }
        if let Some((_, idx)) = record.next_to_fetch {
            while let Some(cycle) = self.pending.pop_front() {
                self.resolved.push(Sample::single(cycle, idx, None));
            }
        }
    }

    fn on_sample(&mut self, record: &CycleRecord) {
        if let Some((_, idx)) = record.next_to_fetch {
            while let Some(cycle) = self.pending.pop_front() {
                self.resolved.push(Sample::single(cycle, idx, None));
            }
            self.resolved.push(Sample::single(record.cycle, idx, None));
        } else {
            // Fetch has nothing (program ending / redirect pending): the PC
            // is captured when fetch resumes.
            self.pending.push_back(record.cycle);
        }
    }

    fn drain_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.resolved)
    }

    fn flush_delta(&mut self, map: &tip_isa::SymbolMap) -> ProfileDelta {
        self.tracker.flush_samples(&self.resolved, map)
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        put_samples(out, &self.resolved);
        put_cycles(out, self.pending.iter().copied(), self.pending.len());
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>, num_instrs: usize) -> Result<(), SnapError> {
        self.resolved = get_samples(r, num_instrs)?;
        self.pending = get_cycles(r)?;
        Ok(())
    }
}

/// Dispatch tagging (AMD IBS, Arm SPE, ProfileMe).
///
/// A sample tags the instruction sitting at the dispatch boundary and is
/// *retrieved when the tagged instruction commits* (this is what lets IBS
/// report how the instruction flowed through the back-end). During a long
/// stall the ROB backs up and the same instruction sits at dispatch for the
/// whole stall — so *it* attracts the samples rather than the stalling
/// instruction (Figure 2b). Wrong-path tags are discarded and re-tagged, as
/// IBS drops samples for squashed instructions.
#[derive(Debug, Default)]
pub struct Dispatch {
    resolved: Vec<Sample>,
    tracker: DeltaTracker,
    /// Samples waiting for something correct-path at the dispatch boundary.
    untagged: VecDeque<u64>,
    /// Tagged samples waiting for their instruction to commit:
    /// (trigger cycle, tag cycle, tagged instruction).
    tagged: VecDeque<(u64, u64, InstrIdx)>,
    /// Tag-to-commit latency of each resolved sample.
    latencies: Vec<u64>,
}

impl Dispatch {
    /// Creates the profiler.
    #[must_use]
    pub fn new() -> Self {
        Dispatch::default()
    }

    /// Tag-to-commit latencies of resolved samples (the per-instruction
    /// back-end flow data IBS exposes); in trigger order.
    #[must_use]
    pub fn tag_to_commit_latencies(&self) -> &[u64] {
        &self.latencies
    }
}

impl Dispatch {
    /// Tags waiting samples at the dispatch boundary and retrieves tags
    /// whose instruction commits this cycle — the always-on half of the
    /// IBS-style machinery, shared by both observation paths.
    #[inline]
    fn tag_and_retrieve(&mut self, record: &CycleRecord) {
        // Tag pending samples with the correct-path instruction at the
        // dispatch boundary.
        if !self.untagged.is_empty() {
            if let Some((_, idx, false)) = record.next_to_dispatch {
                while let Some(cycle) = self.untagged.pop_front() {
                    self.tagged.push_back((cycle, record.cycle, idx));
                }
            }
        }
        // Retrieve samples whose tagged instruction commits this cycle. A
        // squash-and-refetch re-executes the same static instruction, so the
        // tag still resolves (matching IBS re-tagging behaviour closely
        // enough for attribution purposes).
        if !self.tagged.is_empty() && record.is_committing() {
            while let Some(&(cycle, tag_cycle, idx)) = self.tagged.front() {
                if record.committed_iter().any(|c| c.idx == idx) {
                    self.tagged.pop_front();
                    self.latencies.push(record.cycle - tag_cycle);
                    self.resolved.push(Sample::single(cycle, idx, None));
                } else {
                    break;
                }
            }
        }
    }
}

impl SampledProfiler for Dispatch {
    #[inline]
    fn latch(&mut self, record: &CycleRecord) {
        self.tag_and_retrieve(record);
    }

    fn on_sample(&mut self, record: &CycleRecord) {
        self.untagged.push_back(record.cycle);
        self.tag_and_retrieve(record);
    }

    fn drain_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.resolved)
    }

    fn flush_delta(&mut self, map: &tip_isa::SymbolMap) -> ProfileDelta {
        self.tracker.flush_samples(&self.resolved, map)
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        put_samples(out, &self.resolved);
        put_cycles(out, self.untagged.iter().copied(), self.untagged.len());
        snap::put_len(out, self.tagged.len());
        for &(cycle, tag_cycle, idx) in &self.tagged {
            snap::put_u64(out, cycle);
            snap::put_u64(out, tag_cycle);
            snap::put_u32(out, idx.raw());
        }
        put_cycles(out, self.latencies.iter().copied(), self.latencies.len());
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>, num_instrs: usize) -> Result<(), SnapError> {
        self.resolved = get_samples(r, num_instrs)?;
        self.untagged = get_cycles(r)?;
        let n = r.len_of(20)?;
        self.tagged = (0..n)
            .map(|_| Ok((r.u64()?, r.u64()?, get_idx(r, num_instrs)?)))
            .collect::<Result<_, SnapError>>()?;
        self.latencies = get_cycles(r)?;
        Ok(())
    }
}

/// Last-Committed Instruction (Arm CoreSight-style external monitors).
///
/// Samples the youngest instruction that has committed so far. During a
/// stall this is the instruction *before* the stalling one, so long-latency
/// instructions are systematically blamed on their predecessors
/// (Figure 4b).
#[derive(Debug, Default)]
pub struct Lci {
    last_committed: Option<InstrIdx>,
    resolved: Vec<Sample>,
    pending: VecDeque<u64>,
    tracker: DeltaTracker,
}

impl Lci {
    /// Creates the profiler.
    #[must_use]
    pub fn new() -> Self {
        Lci::default()
    }
}

impl SampledProfiler for Lci {
    #[inline]
    fn latch(&mut self, record: &CycleRecord) {
        // The monitor's last-committed register latches every cycle.
        if let Some(c) = record.youngest_committed() {
            self.last_committed = Some(c.idx);
        }
        if !self.pending.is_empty() {
            if let Some(idx) = self.last_committed {
                while let Some(cycle) = self.pending.pop_front() {
                    self.resolved.push(Sample::single(cycle, idx, None));
                }
            }
        }
    }

    fn on_sample(&mut self, record: &CycleRecord) {
        // The monitor reads the last-committed instruction as of the sampled
        // cycle; commits in the sampled cycle itself are visible.
        if let Some(c) = record.youngest_committed() {
            self.last_committed = Some(c.idx);
        }
        if let Some(idx) = self.last_committed {
            while let Some(cycle) = self.pending.pop_front() {
                self.resolved.push(Sample::single(cycle, idx, None));
            }
            self.resolved.push(Sample::single(record.cycle, idx, None));
        } else {
            // Nothing has committed yet (cold start): resolve at first commit.
            self.pending.push_back(record.cycle);
        }
    }

    fn drain_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.resolved)
    }

    fn flush_delta(&mut self, map: &tip_isa::SymbolMap) -> ProfileDelta {
        self.tracker.flush_samples(&self.resolved, map)
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        match self.last_committed {
            None => snap::put_u8(out, 0),
            Some(idx) => {
                snap::put_u8(out, 1);
                snap::put_u32(out, idx.raw());
            }
        }
        put_samples(out, &self.resolved);
        put_cycles(out, self.pending.iter().copied(), self.pending.len());
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>, num_instrs: usize) -> Result<(), SnapError> {
        self.last_committed = match r.u8()? {
            0 => None,
            1 => Some(get_idx(r, num_instrs)?),
            _ => return Err(SnapError::Malformed("LCI register tag")),
        };
        self.resolved = get_samples(r, num_instrs)?;
        self.pending = get_cycles(r)?;
        Ok(())
    }
}

/// Next-Committing Instruction (Intel PEBS), optionally made
/// commit-parallelism-aware (the paper's NCI+ILP ablation, Figure 11c).
///
/// A sample resolves at the first commit at or after the sampled cycle. NCI
/// attributes everything to the oldest instruction committing in that cycle;
/// NCI+ILP splits the sample 1/n across all of them.
#[derive(Debug)]
pub struct Nci {
    ilp_aware: bool,
    resolved: Vec<Sample>,
    pending: VecDeque<u64>,
    tracker: DeltaTracker,
}

impl Nci {
    /// Creates the profiler; `ilp_aware` selects the NCI+ILP variant.
    #[must_use]
    pub fn new(ilp_aware: bool) -> Self {
        Nci {
            ilp_aware,
            resolved: Vec::new(),
            pending: VecDeque::new(),
            tracker: DeltaTracker::new(),
        }
    }

    fn resolve(&mut self, cycle: u64, record: &CycleRecord) {
        // A record can claim `n_committed > 0` yet carry no commit entries
        // if it came from a damaged or perturbed trace; drop the sample
        // instead of panicking (replays must degrade, not die).
        let sample = if self.ilp_aware {
            let targets: Vec<InstrIdx> = record.committed_iter().map(|c| c.idx).collect();
            if targets.is_empty() {
                return;
            }
            Sample::split(cycle, &targets, None)
        } else {
            let Some(oldest) = record.committed_iter().next() else {
                return;
            };
            Sample::single(cycle, oldest.idx, None)
        };
        self.resolved.push(sample);
    }
}

impl SampledProfiler for Nci {
    #[inline]
    fn latch(&mut self, record: &CycleRecord) {
        if !self.pending.is_empty() && record.is_committing() {
            while let Some(cycle) = self.pending.pop_front() {
                self.resolve(cycle, record);
            }
        }
    }

    fn on_sample(&mut self, record: &CycleRecord) {
        self.pending.push_back(record.cycle);
        if record.is_committing() {
            while let Some(cycle) = self.pending.pop_front() {
                self.resolve(cycle, record);
            }
        }
    }

    fn drain_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.resolved)
    }

    fn flush_delta(&mut self, map: &tip_isa::SymbolMap) -> ProfileDelta {
        self.tracker.flush_samples(&self.resolved, map)
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_bool(out, self.ilp_aware);
        put_samples(out, &self.resolved);
        put_cycles(out, self.pending.iter().copied(), self.pending.len());
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>, num_instrs: usize) -> Result<(), SnapError> {
        if r.bool()? != self.ilp_aware {
            return Err(SnapError::Malformed("NCI variant mismatch"));
        }
        self.resolved = get_samples(r, num_instrs)?;
        self.pending = get_cycles(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::{InstrAddr, InstrKind};
    use tip_ooo::CommitView;

    fn commit(cycle: u64, idxs: &[u32]) -> CycleRecord {
        let mut r = CycleRecord::empty(cycle);
        for (i, &idx) in idxs.iter().enumerate() {
            r.committed[i] = CommitView {
                addr: InstrAddr::new(0x1000 + 4 * u64::from(idx)),
                idx: InstrIdx::new(idx),
                kind: InstrKind::IntAlu,
                mispredicted: false,
                flush: false,
            };
        }
        r.n_committed = idxs.len() as u8;
        r
    }

    #[test]
    fn nci_waits_for_next_commit() {
        let mut nci = Nci::new(false);
        nci.observe(&CycleRecord::empty(0), true); // sample on an idle cycle
        assert!(nci.drain_samples().is_empty());
        nci.observe(&commit(1, &[7, 8]), false);
        let s = nci.drain_samples();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].cycle, 0);
        assert_eq!(
            s[0].targets,
            vec![(InstrIdx::new(7), 1.0)],
            "oldest committing wins"
        );
    }

    #[test]
    fn nci_same_cycle_commit_resolves_immediately() {
        let mut nci = Nci::new(false);
        nci.observe(&commit(5, &[3]), true);
        let s = nci.drain_samples();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].targets, vec![(InstrIdx::new(3), 1.0)]);
    }

    #[test]
    fn nci_survives_hostile_commit_counts() {
        // With the plain commit array a "count without entries" record is
        // unrepresentable — the array always holds values, so the old
        // sparse-record hazard is gone by construction. The remaining
        // hostile shape is an out-of-range count on a hand-built or
        // damaged record: `committed_slice`'s clamp must keep both NCI
        // variants panic-free (they resolve against the filler entries).
        let mut hostile = CycleRecord::empty(1);
        hostile.n_committed = 200;
        for ilp in [false, true] {
            let mut nci = Nci::new(ilp);
            nci.observe(&CycleRecord::empty(0), true);
            nci.observe(&hostile, false);
            let _ = nci.drain_samples(); // no panic is the assertion
        }
    }

    #[test]
    fn nci_ilp_splits_across_committers() {
        let mut nci = Nci::new(true);
        nci.observe(&commit(5, &[3, 4]), true);
        let s = nci.drain_samples();
        assert_eq!(
            s[0].targets,
            vec![(InstrIdx::new(3), 0.5), (InstrIdx::new(4), 0.5)]
        );
    }

    #[test]
    fn lci_samples_last_committed() {
        let mut lci = Lci::new();
        lci.observe(&commit(0, &[1, 2]), false);
        lci.observe(&CycleRecord::empty(1), true); // stall-ish cycle
        let s = lci.drain_samples();
        assert_eq!(
            s[0].targets,
            vec![(InstrIdx::new(2), 1.0)],
            "youngest committed"
        );
    }

    #[test]
    fn lci_cold_start_defers_to_first_commit() {
        let mut lci = Lci::new();
        lci.observe(&CycleRecord::empty(0), true);
        assert!(lci.drain_samples().is_empty());
        lci.observe(&commit(1, &[4]), false);
        let s = lci.drain_samples();
        assert_eq!(s[0].targets, vec![(InstrIdx::new(4), 1.0)]);
    }

    #[test]
    fn dispatch_tags_then_resolves_at_commit() {
        let mut d = Dispatch::new();
        let mut r = CycleRecord::empty(0);
        r.next_to_dispatch = Some((InstrAddr::new(0x1028), InstrIdx::new(10), false));
        d.observe(&r, true);
        assert!(
            d.drain_samples().is_empty(),
            "sample waits for the tagged commit"
        );
        d.observe(&commit(7, &[9]), false); // some other instruction
        assert!(d.drain_samples().is_empty());
        d.observe(&commit(9, &[10]), false); // the tagged one commits
        let s = d.drain_samples();
        assert_eq!(s[0].cycle, 0, "sample keeps its trigger cycle");
        assert_eq!(s[0].targets, vec![(InstrIdx::new(10), 1.0)]);
        assert_eq!(d.tag_to_commit_latencies(), &[9]);
    }

    #[test]
    fn dispatch_skips_wrong_path_tags() {
        let mut d = Dispatch::new();
        let mut r = CycleRecord::empty(0);
        r.next_to_dispatch = Some((InstrAddr::new(0x1028), InstrIdx::new(10), true));
        d.observe(&r, true);
        assert!(d.drain_samples().is_empty(), "wrong-path tag is discarded");
        let mut r2 = CycleRecord::empty(1);
        r2.next_to_dispatch = Some((InstrAddr::new(0x102c), InstrIdx::new(11), false));
        d.observe(&r2, false);
        d.observe(&commit(4, &[11]), false);
        let s = d.drain_samples();
        assert_eq!(s[0].cycle, 0);
        assert_eq!(s[0].targets, vec![(InstrIdx::new(11), 1.0)]);
    }

    #[test]
    fn software_samples_the_fetch_pc() {
        let mut sw = Software::new();
        let mut r = CycleRecord::empty(0);
        r.next_to_fetch = Some((InstrAddr::new(0x1100), InstrIdx::new(64)));
        sw.observe(&r, true);
        let s = sw.drain_samples();
        assert_eq!(s[0].targets, vec![(InstrIdx::new(64), 1.0)]);
    }

    #[test]
    fn pending_samples_resolve_in_order() {
        let mut nci = Nci::new(false);
        nci.observe(&CycleRecord::empty(0), true);
        nci.observe(&CycleRecord::empty(1), true);
        nci.observe(&commit(2, &[9]), false);
        let s = nci.drain_samples();
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].cycle, s[1].cycle), (0, 1));
    }
}
