//! Cycle categories and the commit-stage state machine shared by the Oracle
//! and TIP.
//!
//! Every clock cycle the commit stage is in one of four states (Figure 3 of
//! the paper): Computing, Stalled, Flushed, or Drained. The categories here
//! refine those states into the seven cycle-stack components of Figure 7:
//! Execution, ALU/Load/Store stall, Front-end, Mispredict, and Misc. flush.

use serde::{Deserialize, Serialize};
use std::fmt;
use tip_isa::{InstrAddr, InstrIdx, InstrKind};
use tip_ooo::CycleRecord;

/// The refined commit-stage cycle type (Figure 7's stack components).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CycleCategory {
    /// At least one instruction committed (State 1, Computing).
    Execution = 0,
    /// Stalled on a non-memory instruction at the ROB head.
    AluStall = 1,
    /// Stalled on a load at the ROB head.
    LoadStall = 2,
    /// Stalled on a store at the ROB head (store buffer full).
    StoreStall = 3,
    /// ROB drained because the front-end could not deliver (State 4).
    FrontEnd = 4,
    /// ROB empty after a branch misprediction (State 3).
    Mispredict = 5,
    /// ROB empty after a CSR flush or exception (State 3, misc.).
    MiscFlush = 6,
}

/// Number of [`CycleCategory`] variants.
pub const NUM_CATEGORIES: usize = 7;

impl CycleCategory {
    /// All categories in stack order (Execution at the bottom, as in
    /// Figure 7).
    pub const ALL: [CycleCategory; NUM_CATEGORIES] = [
        CycleCategory::Execution,
        CycleCategory::AluStall,
        CycleCategory::LoadStall,
        CycleCategory::StoreStall,
        CycleCategory::FrontEnd,
        CycleCategory::Mispredict,
        CycleCategory::MiscFlush,
    ];

    /// The stall category for an instruction of `kind` blocking the ROB head.
    #[must_use]
    pub fn stall_for(kind: InstrKind) -> Self {
        match kind {
            InstrKind::Load => CycleCategory::LoadStall,
            InstrKind::Store => CycleCategory::StoreStall,
            _ => CycleCategory::AluStall,
        }
    }

    /// The label used in figures and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CycleCategory::Execution => "Execution",
            CycleCategory::AluStall => "ALU stall",
            CycleCategory::LoadStall => "Load stall",
            CycleCategory::StoreStall => "Store stall",
            CycleCategory::FrontEnd => "Front-end",
            CycleCategory::Mispredict => "Mispredict",
            CycleCategory::MiscFlush => "Misc. flush",
        }
    }
}

impl fmt::Display for CycleCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The Offending Instruction Register: tracks the last-committed (or
/// last-excepting) instruction and its flags, exactly as TIP's OIR-update
/// unit does (Section 3.1). The Oracle uses the same state to attribute
/// empty-ROB cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Oir {
    /// The held instruction, if any commit/exception has occurred yet.
    pub entry: Option<OirEntry>,
}

/// Contents of the OIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OirEntry {
    /// Address of the offending instruction.
    pub addr: InstrAddr,
    /// Static instruction index.
    pub idx: InstrIdx,
    /// It was a mispredicted branch.
    pub mispredicted: bool,
    /// It triggered a pipeline flush at commit.
    pub flush: bool,
    /// It raised an exception.
    pub exception: bool,
}

impl Oir {
    /// Updates the register from this cycle's record: latch the youngest
    /// committing instruction with its flags, or the excepting instruction
    /// when the core is not committing.
    pub fn update(&mut self, record: &CycleRecord) {
        if let Some(c) = record.youngest_committed() {
            self.entry = Some(OirEntry {
                addr: c.addr,
                idx: c.idx,
                mispredicted: c.mispredicted,
                flush: c.flush,
                exception: false,
            });
        } else if let Some((addr, idx)) = record.exception {
            self.entry = Some(OirEntry {
                addr,
                idx,
                mispredicted: false,
                flush: false,
                exception: true,
            });
        }
    }

    /// Whether the held instruction explains an empty ROB (any flush-ish
    /// flag set).
    #[must_use]
    pub fn explains_flush(&self) -> bool {
        self.entry
            .is_some_and(|e| e.mispredicted || e.flush || e.exception)
    }
}

/// The four fundamental commit-stage states plus the information needed to
/// attribute the cycle (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitState {
    /// One or more instructions committed: split the cycle 1/n ways.
    Computing,
    /// An unfinished instruction blocks the ROB head.
    Stalled {
        /// The blocking instruction.
        idx: InstrIdx,
        /// Its kind (selects the stall category).
        kind: InstrKind,
    },
    /// The ROB is empty because of a misprediction, CSR flush, or exception;
    /// the cycle belongs to the offending instruction.
    Flushed {
        /// The offending instruction.
        idx: InstrIdx,
        /// Refined category (Mispredict or MiscFlush).
        category: CycleCategory,
    },
    /// The ROB is empty because the front-end is not delivering; the cycle
    /// belongs to the next instruction to enter the ROB (resolved later).
    Drained,
    /// Before the first instruction ever dispatched (cold start) there is no
    /// instruction to blame yet; treated as front-end time pending the first
    /// dispatch.
    ColdStart,
}

/// Classifies one cycle. `oir` must reflect state *before* this record (call
/// [`Oir::update`] after classification), except that an exception firing in
/// this very record takes precedence, mirroring TIP's sample-selection unit.
#[must_use]
pub fn classify(record: &CycleRecord, oir: &Oir) -> CommitState {
    if record.is_committing() {
        return CommitState::Computing;
    }
    if let Some(head) = &record.head {
        return CommitState::Stalled {
            idx: head.idx,
            kind: head.kind,
        };
    }
    // Empty ROB: exception this cycle, else consult the OIR.
    if let Some((_, idx)) = record.exception {
        return CommitState::Flushed {
            idx,
            category: CycleCategory::MiscFlush,
        };
    }
    match oir.entry {
        Some(e) if e.mispredicted => CommitState::Flushed {
            idx: e.idx,
            category: CycleCategory::Mispredict,
        },
        Some(e) if e.flush || e.exception => CommitState::Flushed {
            idx: e.idx,
            category: CycleCategory::MiscFlush,
        },
        Some(_) => CommitState::Drained,
        None => CommitState::ColdStart,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_ooo::{CommitView, HeadView};

    fn commit_record(cycle: u64, flush: bool, mispredicted: bool) -> CycleRecord {
        let mut r = CycleRecord::empty(cycle);
        r.committed[0] = CommitView {
            addr: InstrAddr::new(0x1000),
            idx: InstrIdx::new(0),
            kind: InstrKind::IntAlu,
            mispredicted,
            flush,
        };
        r.n_committed = 1;
        r.rob_len = 1;
        r
    }

    #[test]
    fn committing_is_computing() {
        let r = commit_record(0, false, false);
        assert_eq!(classify(&r, &Oir::default()), CommitState::Computing);
    }

    #[test]
    fn head_blocks_means_stalled() {
        let mut r = CycleRecord::empty(1);
        r.rob_len = 3;
        r.head = Some(HeadView {
            addr: InstrAddr::new(0x2000),
            idx: InstrIdx::new(5),
            kind: InstrKind::Load,
            executed: false,
        });
        let st = classify(&r, &Oir::default());
        assert_eq!(
            st,
            CommitState::Stalled {
                idx: InstrIdx::new(5),
                kind: InstrKind::Load
            }
        );
    }

    #[test]
    fn empty_after_mispredict_is_flushed() {
        let mut oir = Oir::default();
        oir.update(&commit_record(0, false, true));
        let empty = CycleRecord::empty(1);
        assert_eq!(
            classify(&empty, &oir),
            CommitState::Flushed {
                idx: InstrIdx::new(0),
                category: CycleCategory::Mispredict
            }
        );
    }

    #[test]
    fn empty_after_csr_flush_is_misc_flush() {
        let mut oir = Oir::default();
        oir.update(&commit_record(0, true, false));
        let empty = CycleRecord::empty(1);
        assert_eq!(
            classify(&empty, &oir),
            CommitState::Flushed {
                idx: InstrIdx::new(0),
                category: CycleCategory::MiscFlush
            }
        );
    }

    #[test]
    fn empty_after_plain_commit_is_drained() {
        let mut oir = Oir::default();
        oir.update(&commit_record(0, false, false));
        let empty = CycleRecord::empty(1);
        assert_eq!(classify(&empty, &oir), CommitState::Drained);
    }

    #[test]
    fn exception_takes_precedence_and_latches() {
        let mut oir = Oir::default();
        oir.update(&commit_record(0, false, false));
        let mut r = CycleRecord::empty(1);
        r.exception = Some((InstrAddr::new(0x3000), InstrIdx::new(9)));
        assert_eq!(
            classify(&r, &oir),
            CommitState::Flushed {
                idx: InstrIdx::new(9),
                category: CycleCategory::MiscFlush
            }
        );
        oir.update(&r);
        let empty = CycleRecord::empty(2);
        assert_eq!(
            classify(&empty, &oir),
            CommitState::Flushed {
                idx: InstrIdx::new(9),
                category: CycleCategory::MiscFlush
            }
        );
    }

    #[test]
    fn cold_start_before_any_commit() {
        let empty = CycleRecord::empty(0);
        assert_eq!(classify(&empty, &Oir::default()), CommitState::ColdStart);
    }

    #[test]
    fn stall_categories_by_kind() {
        assert_eq!(
            CycleCategory::stall_for(InstrKind::Load),
            CycleCategory::LoadStall
        );
        assert_eq!(
            CycleCategory::stall_for(InstrKind::Store),
            CycleCategory::StoreStall
        );
        assert_eq!(
            CycleCategory::stall_for(InstrKind::FpDiv),
            CycleCategory::AluStall
        );
        assert_eq!(
            CycleCategory::stall_for(InstrKind::CsrFlush),
            CycleCategory::AluStall
        );
    }

    #[test]
    fn all_categories_have_unique_labels() {
        let labels: std::collections::HashSet<_> =
            CycleCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), NUM_CATEGORIES);
    }
}
