//! The primary contribution of *TIP: Time-Proportional Instruction
//! Profiling* (MICRO 2021), reimplemented as a library.
//!
//! Performance profilers attribute execution time to instructions. This
//! crate implements the paper's full profiling stack over the commit-stage
//! trace produced by the `tip-ooo` simulator:
//!
//! - the **Oracle** golden reference ([`OracleProfiler`]): every cycle is
//!   attributed to the instruction(s) whose latency the processor exposes —
//!   1/n to each of n co-committing instructions, stalls to the ROB head,
//!   flushes to the offending instruction, drains to the first instruction
//!   entering the ROB afterwards;
//! - **TIP** ([`profilers::Tip`]): the same attribution policies applied at
//!   sampled cycles through a faithful model of the paper's hardware unit
//!   (OIR + sample-selection + CSRs, [`profilers::TipRegisters`]);
//! - the heuristics used by real hardware: Software/perf skid, AMD-IBS-style
//!   Dispatch tagging, CoreSight-style LCI, and Intel-PEBS-style NCI, plus
//!   the NCI+ILP and TIP-ILP ablations;
//! - shared **sampling schedules** ([`SamplerConfig`]) so every profiler
//!   samples the same cycles (isolating systematic error);
//! - **profiles and the error metric** ([`Profile`]):
//!   `e = (c_total − c_correct)/c_total` at instruction, basic-block, or
//!   function granularity;
//! - **cycle stacks** ([`CycleStack`]) and per-symbol time breakdowns;
//! - the **overhead models** of Section 3.2 ([`overhead`]).
//!
//! # Example
//!
//! ```
//! use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
//! use tip_isa::{Granularity, Instr, ProgramBuilder, BranchBehavior};
//! use tip_ooo::{Core, CoreConfig};
//!
//! # fn main() -> Result<(), tip_isa::BuildError> {
//! let mut b = ProgramBuilder::named("demo");
//! let main = b.function("main");
//! let body = b.block(main);
//! b.push(body, Instr::int_alu(None, [None, None]));
//! b.push(body, Instr::branch(body, BranchBehavior::Loop { taken_iters: 10_000 }));
//! let exit = b.block(main);
//! b.push(exit, Instr::halt());
//! let program = b.build()?;
//!
//! // A prime interval avoids aliasing with the loop's commit pattern
//! // (the paper's Figure 11b phenomenon).
//! let mut bank = ProfilerBank::new(&program, SamplerConfig::periodic(97), &[ProfilerId::Tip]);
//! let mut core = Core::new(&program, CoreConfig::default(), 42);
//! core.run(&mut bank, 1_000_000);
//! let result = bank.finish();
//! let error = result.error_of(&program, ProfilerId::Tip, Granularity::Instruction);
//! assert!(error < 0.10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bank;
mod category;
mod oracle;
mod profile;
pub mod profilers;
mod sample;
mod sampler;
mod snapshot;

pub mod overhead;

pub use bank::{BankDeltas, BankResult, ProfilerBank};
pub use category::{classify, CommitState, CycleCategory, Oir, OirEntry, NUM_CATEGORIES};
pub use oracle::{sampled_symbol_stacks, CycleStack, OracleProfiler, OracleResult};
pub use profile::{DeltaTracker, Profile, ProfileDelta, UNITS_PER_CYCLE};
pub use profilers::{AnyProfiler, ProfilerId, SampledProfiler};
pub use sample::{weight_by_intervals, Sample};
pub use sampler::{SampleSchedule, SamplerConfig, SamplingMode};
