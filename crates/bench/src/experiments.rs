//! Data collection behind every table and figure of the paper.
//!
//! Each `figNN` function returns plain row structs; the `src/bin/figNN.rs`
//! binaries render them with [`crate::table`]. EXPERIMENTS.md records the
//! measured numbers against the paper's.

use crate::executor::{self, default_workers, Job, SpecRunner};
use crate::run::{run_profiled, ProfiledRun, RunError, DEFAULT_INTERVAL};
use tip_core::{CycleCategory, ProfilerId, SamplerConfig, NUM_CATEGORIES};
use tip_isa::{Granularity, SymbolId};
use tip_ooo::CoreConfig;
use tip_workloads::{benchmark, suite, Benchmark, SuiteScale, WorkloadClass};

pub use tip_isa::Granularity as ProfileGranularity;

/// A benchmark together with its profiled run.
#[derive(Debug)]
pub struct SuiteRun {
    /// The benchmark.
    pub bench: Benchmark,
    /// Its profiled execution.
    pub run: ProfiledRun,
}

/// Runs the whole suite with all profilers on the default schedule.
///
/// # Errors
///
/// Fails fast with the first [`RunError`]; use [`crate::campaign`] to keep
/// going past individual benchmark failures.
pub fn run_suite(scale: SuiteScale) -> Result<Vec<SuiteRun>, RunError> {
    run_suite_with(
        scale,
        SamplerConfig::periodic(DEFAULT_INTERVAL),
        &ProfilerId::ALL,
    )
}

/// Runs the whole suite with a custom schedule/profiler set, fanned out over
/// the [`crate::executor`] worker pool (every available core). Results come
/// back in canonical suite order — the executor's deterministic merge makes
/// the fan-out invisible.
///
/// # Errors
///
/// Fails with the first [`RunError`] in suite order; use [`crate::campaign`]
/// to keep going past individual benchmark failures.
pub fn run_suite_with(
    scale: SuiteScale,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
) -> Result<Vec<SuiteRun>, RunError> {
    let jobs: Vec<Job> = suite(scale)
        .into_iter()
        .map(|bench| Job {
            sampler,
            ..Job::new(bench, 42, profilers)
        })
        .collect();
    let mut runs: Vec<SuiteRun> = Vec::with_capacity(jobs.len());
    let mut first_err: Option<RunError> = None;
    executor::execute(&jobs, &SpecRunner, default_workers(), |out| {
        // Commits arrive in suite order, so the first error seen here is
        // the same one the old serial loop would have failed fast on.
        if first_err.is_some() {
            return;
        }
        match out.result {
            Ok(run) => runs.push(SuiteRun {
                bench: jobs[out.index].bench.clone(),
                run,
            }),
            Err(e) => first_err = Some(e),
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(runs),
    }
}

// ---------------------------------------------------------------------------
// Figure 7: normalized cycle stacks.
// ---------------------------------------------------------------------------

/// One benchmark's normalized cycle stack.
#[derive(Debug, Clone)]
pub struct StackRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Paper classification.
    pub class: WorkloadClass,
    /// Fractions per [`CycleCategory`], in `CycleCategory::ALL` order.
    pub fractions: [f64; NUM_CATEGORIES],
    /// Run IPC (for context).
    pub ipc: f64,
}

/// Figure 7: commit-stage cycle stacks for the whole suite.
#[must_use]
pub fn fig07(runs: &[SuiteRun]) -> Vec<StackRow> {
    runs.iter()
        .map(|sr| StackRow {
            name: sr.bench.name,
            class: sr.bench.class,
            fractions: sr.run.bank.oracle.cycle_stack().normalized(),
            ipc: sr.run.ipc(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 8, 9, 10 (and 1): profile errors per granularity.
// ---------------------------------------------------------------------------

/// One benchmark's profile errors for a set of profilers.
#[derive(Debug, Clone)]
pub struct ErrorRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Paper classification.
    pub class: WorkloadClass,
    /// `(profiler, error)` pairs.
    pub errors: Vec<(ProfilerId, f64)>,
}

/// Profile errors for every benchmark at `granularity`.
#[must_use]
pub fn error_rows(
    runs: &[SuiteRun],
    granularity: Granularity,
    profilers: &[ProfilerId],
) -> Vec<ErrorRow> {
    runs.iter()
        .map(|sr| ErrorRow {
            name: sr.bench.name,
            class: sr.bench.class,
            errors: profilers
                .iter()
                .map(|&p| (p, sr.run.bank.error_of(&sr.bench.program, p, granularity)))
                .collect(),
        })
        .collect()
}

/// Arithmetic-mean error per profiler over `rows` (the paper's aggregation).
#[must_use]
pub fn mean_errors(rows: &[ErrorRow], profilers: &[ProfilerId]) -> Vec<(ProfilerId, f64)> {
    profilers
        .iter()
        .map(|&p| {
            let sum: f64 = rows
                .iter()
                .map(|r| {
                    r.errors
                        .iter()
                        .find(|(id, _)| *id == p)
                        .expect("profiler present")
                        .1
                })
                .sum();
            (p, sum / rows.len() as f64)
        })
        .collect()
}

/// Mean error per profiler restricted to one class.
#[must_use]
pub fn class_mean_errors(
    rows: &[ErrorRow],
    class: WorkloadClass,
    profilers: &[ProfilerId],
) -> Vec<(ProfilerId, f64)> {
    let filtered: Vec<ErrorRow> = rows.iter().filter(|r| r.class == class).cloned().collect();
    mean_errors(&filtered, profilers)
}

// ---------------------------------------------------------------------------
// Figure 11a: sampling-frequency sensitivity.
// ---------------------------------------------------------------------------

/// The frequency sweep of Figure 11a, expressed as interval multipliers of
/// the paper's 4 kHz baseline: 100 Hz, 1 kHz, 4 kHz, 10 kHz, 20 kHz.
pub const FREQUENCIES: [(&str, f64); 5] = [
    ("100 Hz", 100.0),
    ("1 kHz", 1_000.0),
    ("4 kHz", 4_000.0),
    ("10 kHz", 10_000.0),
    ("20 kHz", 20_000.0),
];

/// Maps a paper frequency onto our scaled cycle interval (4 kHz ≙
/// [`DEFAULT_INTERVAL`]); kept odd to avoid loop aliasing.
#[must_use]
pub fn interval_for_frequency(freq_hz: f64) -> u64 {
    let scaled = (DEFAULT_INTERVAL as f64 * 4_000.0 / freq_hz).round() as u64;
    scaled | 1
}

/// One profiler's mean instruction-level error per frequency.
#[derive(Debug, Clone)]
pub struct FrequencyRow {
    /// The profiler.
    pub profiler: ProfilerId,
    /// `(label, mean error)` per frequency in [`FREQUENCIES`] order.
    pub errors: Vec<(&'static str, f64)>,
}

/// Figure 11a: instruction-level error vs sampling frequency for NCI,
/// TIP-ILP, and TIP, averaged over the suite.
///
/// # Errors
///
/// Propagates the first [`RunError`] from any sweep point.
pub fn fig11a(scale: SuiteScale) -> Result<Vec<FrequencyRow>, RunError> {
    let profilers = [ProfilerId::Nci, ProfilerId::TipIlp, ProfilerId::Tip];
    let mut per_profiler: Vec<FrequencyRow> = profilers
        .iter()
        .map(|&p| FrequencyRow {
            profiler: p,
            errors: Vec::new(),
        })
        .collect();
    for &(label, freq) in &FREQUENCIES {
        let sampler = SamplerConfig::periodic(interval_for_frequency(freq));
        let runs = run_suite_with(scale, sampler, &profilers)?;
        let rows = error_rows(&runs, Granularity::Instruction, &profilers);
        for (i, &(p, e)) in mean_errors(&rows, &profilers).iter().enumerate() {
            debug_assert_eq!(per_profiler[i].profiler, p);
            per_profiler[i].errors.push((label, e));
        }
    }
    Ok(per_profiler)
}

// ---------------------------------------------------------------------------
// Figure 11b: periodic vs random sampling.
// ---------------------------------------------------------------------------

/// One benchmark's TIP error under periodic and random sampling.
#[derive(Debug, Clone)]
pub struct SamplingModeRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Paper classification.
    pub class: WorkloadClass,
    /// TIP instruction-level error with periodic sampling.
    pub periodic: f64,
    /// TIP instruction-level error with random sampling.
    pub random: f64,
}

/// Figure 11b: TIP instruction-level error, periodic vs random sampling.
///
/// # Errors
///
/// Propagates the first [`RunError`] from either sweep.
pub fn fig11b(scale: SuiteScale) -> Result<Vec<SamplingModeRow>, RunError> {
    let profilers = [ProfilerId::Tip];
    let periodic = run_suite_with(scale, SamplerConfig::periodic(DEFAULT_INTERVAL), &profilers)?;
    let random = run_suite_with(
        scale,
        SamplerConfig::random(DEFAULT_INTERVAL, 0xfeed),
        &profilers,
    )?;
    let rows = periodic
        .iter()
        .zip(&random)
        .map(|(p, r)| SamplingModeRow {
            name: p.bench.name,
            class: p.bench.class,
            periodic: p.run.bank.error_of(
                &p.bench.program,
                ProfilerId::Tip,
                Granularity::Instruction,
            ),
            random: r.run.bank.error_of(
                &r.bench.program,
                ProfilerId::Tip,
                Granularity::Instruction,
            ),
        })
        .collect();
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 11c: NCI+ILP box plots.
// ---------------------------------------------------------------------------

/// Five-number summary of a profiler's per-benchmark instruction errors.
#[derive(Debug, Clone)]
pub struct BoxRow {
    /// The profiler.
    pub profiler: ProfilerId,
    /// Minimum error.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median error.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum error.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Five-number summary (min, q1, median, q3, max) of `xs` using linear
/// interpolation between order statistics.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-finite values.
#[must_use]
pub fn five_number_summary(xs: &[f64]) -> (f64, f64, f64, f64, f64) {
    assert!(!xs.is_empty(), "summary of an empty sample");
    let mut xs = xs.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |f: f64| -> f64 {
        let pos = f * (xs.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        xs[lo] + (xs[hi] - xs[lo]) * (pos - lo as f64)
    };
    (
        xs[0],
        q(0.25),
        q(0.5),
        q(0.75),
        *xs.last().expect("non-empty"),
    )
}

/// Figure 11c: box-plot statistics for NCI+ILP vs NCI, TIP-ILP, and TIP.
#[must_use]
pub fn fig11c(runs: &[SuiteRun]) -> Vec<BoxRow> {
    let profilers = [
        ProfilerId::NciIlp,
        ProfilerId::Nci,
        ProfilerId::TipIlp,
        ProfilerId::Tip,
    ];
    let rows = error_rows(runs, Granularity::Instruction, &profilers);
    profilers
        .iter()
        .map(|&p| {
            let xs: Vec<f64> = rows
                .iter()
                .map(|r| r.errors.iter().find(|(id, _)| *id == p).expect("present").1)
                .collect();
            let (min, q1, median, q3, max) = five_number_summary(&xs);
            BoxRow {
                profiler: p,
                min,
                q1,
                median,
                q3,
                max,
                mean: xs.iter().sum::<f64>() / xs.len() as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 12 & 13: the Imagick case study.
// ---------------------------------------------------------------------------

/// Function-level and `ceil`-instruction-level profiles for Oracle, TIP, and
/// NCI (Figure 12).
#[derive(Debug)]
pub struct Fig12 {
    /// `(function name, oracle share, tip share, nci share)` rows.
    pub functions: Vec<(String, f64, f64, f64)>,
    /// `(instr mnemonic@addr, oracle share, tip share, nci share)` within
    /// `ceil`, shares of time within the function.
    pub ceil_instrs: Vec<(String, f64, f64, f64)>,
}

/// Figure 12: profiles of the Imagick stand-in.
///
/// # Errors
///
/// Propagates the [`RunError`] of the Imagick run.
pub fn fig12(scale: SuiteScale) -> Result<Fig12, RunError> {
    let bench = benchmark("imagick", scale);
    let program = &bench.program;
    let run = run_profiled(
        program,
        CoreConfig::default(),
        SamplerConfig::periodic(DEFAULT_INTERVAL),
        &[ProfilerId::Tip, ProfilerId::Nci],
        42,
    )?;

    let g = Granularity::Function;
    let oracle_f = run.bank.oracle.profile(program, g);
    let tip_f = run.bank.profile_of(program, ProfilerId::Tip, g);
    let nci_f = run.bank.profile_of(program, ProfilerId::Nci, g);
    let functions = program
        .functions()
        .iter()
        .map(|f| {
            let sym = SymbolId(f.id().index() as u32);
            (
                f.name().to_owned(),
                oracle_f.share(sym),
                tip_f.share(sym),
                nci_f.share(sym),
            )
        })
        .collect();

    // Instruction-level, within ceil.
    let gi = Granularity::Instruction;
    let oracle_i = run.bank.oracle.profile(program, gi);
    let tip_i = run.bank.profile_of(program, ProfilerId::Tip, gi);
    let nci_i = run.bank.profile_of(program, ProfilerId::Nci, gi);
    let ceil = program
        .functions()
        .iter()
        .find(|f| f.name() == "ceil")
        .expect("imagick has ceil");
    let mut ceil_instrs = Vec::new();
    for blk_i in ceil.block_range() {
        let blk = &program.blocks()[blk_i];
        for gi_idx in blk.instr_range() {
            let idx = tip_isa::InstrIdx::new(gi_idx as u32);
            let sym = SymbolId(idx.raw());
            let label = format!("{}@{}", program.instr(idx).kind(), program.addr_of(idx));
            ceil_instrs.push((
                label,
                oracle_i.share(sym),
                tip_i.share(sym),
                nci_i.share(sym),
            ));
        }
    }
    // Normalize the instruction shares to within-function fractions.
    for col in 1..=3 {
        let total: f64 = ceil_instrs
            .iter()
            .map(|r| match col {
                1 => r.1,
                2 => r.2,
                _ => r.3,
            })
            .sum();
        if total > 0.0 {
            for r in &mut ceil_instrs {
                match col {
                    1 => r.1 /= total,
                    2 => r.2 /= total,
                    _ => r.3 /= total,
                }
            }
        }
    }
    Ok(Fig12 {
        functions,
        ceil_instrs,
    })
}

/// Per-function time breakdowns for original vs optimized Imagick
/// (Figure 13), plus the overall speed-up.
#[derive(Debug)]
pub struct Fig13 {
    /// `(function, [categories] cycles)` for the original version.
    pub original: Vec<(String, [f64; NUM_CATEGORIES])>,
    /// Same for the optimized version.
    pub optimized: Vec<(String, [f64; NUM_CATEGORIES])>,
    /// Original cycles / optimized cycles.
    pub speedup: f64,
    /// IPC of original and optimized versions.
    pub ipc: (f64, f64),
}

/// Figure 13: the Imagick optimization.
///
/// # Errors
///
/// Propagates the first [`RunError`] from either Imagick variant.
pub fn fig13(scale: SuiteScale) -> Result<Fig13, RunError> {
    let orig = tip_workloads::imagick_original(scale.dyn_instrs());
    let opt = tip_workloads::imagick_optimized(scale.dyn_instrs());
    let sampler = SamplerConfig::periodic(DEFAULT_INTERVAL);
    let run_o = run_profiled(
        &orig,
        CoreConfig::default(),
        sampler,
        &[ProfilerId::Tip],
        42,
    )?;
    let run_p = run_profiled(&opt, CoreConfig::default(), sampler, &[ProfilerId::Tip], 42)?;

    let stacks = |program: &tip_isa::Program, run: &ProfiledRun| {
        program
            .functions()
            .iter()
            .map(|f| {
                let stack = run.bank.oracle.symbol_stack(
                    program,
                    Granularity::Function,
                    SymbolId(f.id().index() as u32),
                );
                let mut row = [0.0; NUM_CATEGORIES];
                for (i, c) in CycleCategory::ALL.iter().enumerate() {
                    row[i] = stack.get(*c);
                }
                (f.name().to_owned(), row)
            })
            .collect::<Vec<_>>()
    };

    Ok(Fig13 {
        original: stacks(&orig, &run_o),
        optimized: stacks(&opt, &run_p),
        speedup: run_o.summary.cycles as f64 / run_p.summary.cycles as f64,
        ipc: (run_o.ipc(), run_p.ipc()),
    })
}

// ---------------------------------------------------------------------------
// Validation (Section 5.2): relative profiler gaps across two "platforms".
// ---------------------------------------------------------------------------

/// The validation experiment: the Software-vs-NCI profile difference on two
/// different core configurations (standing in for the paper's Intel-vs-
/// FireSim comparison, which checks that relative gaps are in the same
/// ballpark across platforms).
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Core configuration name.
    pub config: String,
    /// Mean instruction-level Software-vs-NCI profile difference.
    pub instr_gap: f64,
    /// Mean function-level Software-vs-NCI profile difference.
    pub func_gap: f64,
}

/// Runs the validation experiment on a subset of the suite.
///
/// # Errors
///
/// Propagates the first [`RunError`] from any configuration/benchmark pair.
pub fn validation(scale: SuiteScale) -> Result<Vec<ValidationRow>, RunError> {
    let names = ["exchange2", "imagick", "mcf", "lbm", "gcc", "namd"];
    let configs = [CoreConfig::default(), CoreConfig::small_2wide()];
    configs
        .iter()
        .map(|config| {
            let mut instr_gap = 0.0;
            let mut func_gap = 0.0;
            for name in names {
                let b = benchmark(name, scale);
                let run = run_profiled(
                    &b.program,
                    config.clone(),
                    SamplerConfig::periodic(DEFAULT_INTERVAL),
                    &[ProfilerId::Software, ProfilerId::Nci],
                    42,
                )?;
                for (g, acc) in [
                    (Granularity::Instruction, &mut instr_gap),
                    (Granularity::Function, &mut func_gap),
                ] {
                    let sw = run.bank.profile_of(&b.program, ProfilerId::Software, g);
                    let nci = run.bank.profile_of(&b.program, ProfilerId::Nci, g);
                    *acc += sw.error_vs(&nci);
                }
            }
            Ok(ValidationRow {
                config: config.name.clone(),
                instr_gap: instr_gap / names.len() as f64,
                func_gap: func_gap / names.len() as f64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_workloads::BENCHMARK_NAMES;

    #[test]
    fn interval_mapping_scales_inversely() {
        assert_eq!(interval_for_frequency(4_000.0), DEFAULT_INTERVAL | 1);
        assert!(interval_for_frequency(100.0) > interval_for_frequency(20_000.0));
        assert_eq!(interval_for_frequency(100.0) % 2, 1, "interval stays odd");
    }

    #[test]
    fn five_number_summary_matches_hand_computation() {
        let (min, q1, med, q3, max) = five_number_summary(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!((min, q1, med, q3, max), (1.0, 2.0, 3.0, 4.0, 5.0));
        // Interpolation between order statistics.
        let (_, q1, med, _, _) = five_number_summary(&[1.0, 2.0, 3.0, 4.0]);
        assert!((q1 - 1.75).abs() < 1e-12);
        assert!((med - 2.5).abs() < 1e-12);
        // Degenerate single sample.
        assert_eq!(five_number_summary(&[7.0]), (7.0, 7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn five_number_summary_rejects_empty() {
        let _ = five_number_summary(&[]);
    }

    #[test]
    fn class_means_partition_the_suite() {
        // Hand-built rows: class means must aggregate only their class.
        let rows = vec![
            ErrorRow {
                name: "a",
                class: WorkloadClass::Compute,
                errors: vec![(ProfilerId::Tip, 0.1)],
            },
            ErrorRow {
                name: "b",
                class: WorkloadClass::Stall,
                errors: vec![(ProfilerId::Tip, 0.3)],
            },
            ErrorRow {
                name: "c",
                class: WorkloadClass::Compute,
                errors: vec![(ProfilerId::Tip, 0.2)],
            },
        ];
        let compute = class_mean_errors(&rows, WorkloadClass::Compute, &[ProfilerId::Tip]);
        assert!((compute[0].1 - 0.15).abs() < 1e-12);
        let stall = class_mean_errors(&rows, WorkloadClass::Stall, &[ProfilerId::Tip]);
        assert!((stall[0].1 - 0.3).abs() < 1e-12);
        let overall = mean_errors(&rows, &[ProfilerId::Tip]);
        assert!((overall[0].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn error_rows_cover_all_benchmarks() {
        let runs = run_suite_with(
            SuiteScale::Test,
            SamplerConfig::periodic(211),
            &[ProfilerId::Tip],
        )
        .expect("test suite terminates");
        let rows = error_rows(&runs, Granularity::Function, &[ProfilerId::Tip]);
        assert_eq!(rows.len(), BENCHMARK_NAMES.len());
        let means = mean_errors(&rows, &[ProfilerId::Tip]);
        assert!(means[0].1 >= 0.0 && means[0].1 <= 1.0);
    }
}
