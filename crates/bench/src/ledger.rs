//! The campaign ledger: every byte-stable artifact a campaign leaves on
//! disk, owned by one type so every frontend writes identical files.
//!
//! This used to be private plumbing inside [`crate::campaign`]; the
//! networked daemon (`tip-serve`) needs the *same* journal, result-file,
//! failure-report, and metrics formats — byte-identical, because the
//! acceptance story for remote submission is "diff the artifacts against a
//! local run" — so the persistence lives here and both frontends call it.
//!
//! Invariants the ledger enforces:
//!
//! * All writes go through temp-file + atomic rename
//!   ([`crate::checkpoint::atomic_write`]), so a `SIGKILL` never leaves a
//!   torn file.
//! * The caller is the single committer: one thread, canonical job order.
//!   The ledger itself never spawns or locks — determinism comes from call
//!   order, and the executor/committer already guarantees that.
//! * `journal.txt` records every settled benchmark (`done <name>` /
//!   `failed <name>`); [`Ledger::open`] with `resume` keeps only `done`
//!   entries so retried failures get a fresh verdict line.
//! * `metrics.txt` is the one deliberately non-deterministic file (host
//!   timing: wall, queue wait, worker indices).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::campaign::{CompletedBench, FailedBench};
use crate::checkpoint::atomic_write;
use crate::executor::{ExecSummary, JobMetrics};
use crate::hostbench::ScalingReport;
use tip_core::ProfilerId;
use tip_isa::Granularity;

/// File name of the resume journal inside a campaign directory.
pub const JOURNAL_FILE: &str = "journal.txt";
/// File name of the failure report inside a campaign directory.
pub const FAILURES_FILE: &str = "failures.txt";
/// File name of the host-timing metrics inside a campaign directory.
pub const METRICS_FILE: &str = "metrics.txt";

/// Path of one benchmark's result file inside a campaign directory.
#[must_use]
pub fn result_path(dir: &Path, bench: &str) -> PathBuf {
    dir.join(format!("{bench}.result"))
}

/// Collapses a multi-line error (e.g. a livelock pipeline dump) to one line
/// for the key=value result files and wire error replies.
#[must_use]
pub fn one_line(s: &str) -> String {
    s.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Renders a completed benchmark's result-file body — exactly the bytes
/// [`Ledger::commit_completed`] persists. Public so a fleet daemon can
/// render the artifact next to the simulation and ship the finished text to
/// the coordinator, whose ledger writes stay byte-identical to a local run.
#[must_use]
pub fn render_completed(c: &CompletedBench, profilers: &[ProfilerId]) -> String {
    let mut body = String::new();
    let _ = writeln!(body, "status=ok");
    let _ = writeln!(body, "bench={}", c.run.bench.name);
    let _ = writeln!(body, "attempts={}", c.attempts);
    let _ = writeln!(body, "cycles={}", c.run.run.summary.cycles);
    let _ = writeln!(body, "instructions={}", c.run.run.summary.instructions);
    let _ = writeln!(body, "ipc={:.6}", c.run.run.ipc());
    for &p in profilers {
        let err = c
            .run
            .run
            .bank
            .error_of(&c.run.bench.program, p, Granularity::Instruction);
        let _ = writeln!(body, "error.instr.{p:?}={err:.6}");
    }
    body
}

/// Renders a failed benchmark's result-file body — exactly the bytes
/// [`Ledger::commit_failed`] persists. See [`render_completed`].
#[must_use]
pub fn render_failed(f: &FailedBench) -> String {
    let mut body = String::new();
    let _ = writeln!(body, "status=failed");
    let _ = writeln!(body, "bench={}", f.name);
    let _ = writeln!(body, "attempts={}", f.attempts);
    let _ = writeln!(body, "error={}", one_line(&f.error.to_string()));
    body
}

/// One settled benchmark's host-timing entry in `metrics.txt`.
#[derive(Debug, Clone)]
struct BenchRow {
    name: String,
    ok: bool,
    attempts: u32,
    metrics: JobMetrics,
}

/// One failed benchmark's entry in `failures.txt`.
#[derive(Debug, Clone)]
struct FailureLine {
    name: String,
    attempts: u32,
    error: String,
}

/// Crash-consistent writer for a campaign's on-disk artifacts.
///
/// With no output directory the ledger is a no-op recorder (campaigns can
/// run purely in memory); with one, every commit incrementally rewrites the
/// journal and failure report and persists the benchmark's result file, in
/// the exact byte formats the campaign module has always produced.
#[derive(Debug)]
pub struct Ledger {
    out_dir: Option<PathBuf>,
    journal: Vec<(bool, String)>,
    /// Benchmarks settled OK in this or a resumed-from invocation
    /// (completed + skipped), for the failure report's `completed=` count.
    settled_ok: usize,
    failures: Vec<FailureLine>,
    rows: Vec<BenchRow>,
}

impl Ledger {
    /// Opens the ledger for a campaign directory. With `resume`, the
    /// journal's `done` entries are loaded so [`Self::is_done`] can skip
    /// re-enqueueing them; journalled *failures* are dropped (the retry's
    /// fresh verdict replaces the stale line).
    #[must_use]
    pub fn open(out_dir: Option<&Path>, resume: bool) -> Self {
        let mut ledger = Ledger {
            out_dir: out_dir.map(Path::to_path_buf),
            journal: Vec::new(),
            settled_ok: 0,
            failures: Vec::new(),
            rows: Vec::new(),
        };
        if !resume {
            return ledger;
        }
        let Some(dir) = &ledger.out_dir else {
            return ledger;
        };
        let Ok(body) = fs::read_to_string(dir.join(JOURNAL_FILE)) else {
            return ledger;
        };
        for line in body.lines() {
            if let Some(("done", name)) = line.split_once(' ') {
                ledger.journal.push((true, name.to_owned()));
            }
        }
        ledger
    }

    /// Whether the (resumed) journal already records `name` as complete.
    #[must_use]
    pub fn is_done(&self, name: &str) -> bool {
        self.journal.iter().any(|(ok, n)| *ok && n == name)
    }

    /// The benchmarks the (resumed) journal records as complete, in journal
    /// order — what a restarted daemon skips re-running.
    #[must_use]
    pub fn done_names(&self) -> Vec<String> {
        self.journal
            .iter()
            .filter(|(ok, _)| *ok)
            .map(|(_, n)| n.clone())
            .collect()
    }

    /// Notes a benchmark skipped because an earlier invocation completed
    /// it; it counts toward the failure report's `completed=` figure so a
    /// resumed campaign converges to the same report bytes.
    pub fn note_skipped(&mut self) {
        self.settled_ok += 1;
    }

    /// Commits a completed benchmark: persists its result file (with
    /// per-profiler error lines for `profilers`), journals it `done`, and
    /// rewrites the failure report.
    pub fn commit_completed(
        &mut self,
        c: &CompletedBench,
        metrics: JobMetrics,
        profilers: &[ProfilerId],
    ) {
        self.persist_completed(c, profilers);
        self.settled_ok += 1;
        self.rows.push(BenchRow {
            name: c.run.bench.name.to_owned(),
            ok: true,
            attempts: c.attempts,
            metrics,
        });
        self.record_journal(c.run.bench.name, true);
        self.persist_failure_report();
    }

    /// Commits a failed benchmark: persists its result file, journals it
    /// `failed`, and rewrites the failure report with the new casualty.
    pub fn commit_failed(&mut self, f: &FailedBench, metrics: JobMetrics) {
        self.persist_failed(f);
        self.failures.push(FailureLine {
            name: f.name.to_owned(),
            attempts: f.attempts,
            error: one_line(&f.error.to_string()),
        });
        self.rows.push(BenchRow {
            name: f.name.to_owned(),
            ok: false,
            attempts: f.attempts,
            metrics,
        });
        self.record_journal(f.name, false);
        self.persist_failure_report();
    }

    /// Commits a benchmark settled on a *remote* daemon: the result-file
    /// body arrives pre-rendered (by [`render_completed`] /
    /// [`render_failed`] on the daemon), so this writes it verbatim and the
    /// artifacts stay byte-identical to a local run. `error_line` is the
    /// one-line failure message for `failures.txt` (empty when `ok`).
    pub fn commit_remote(
        &mut self,
        name: &str,
        ok: bool,
        attempts: u32,
        body: &str,
        error_line: &str,
        metrics: JobMetrics,
    ) {
        if let Some(dir) = &self.out_dir {
            report_io(atomic_write(&result_path(dir, name), body.as_bytes()));
        }
        if ok {
            self.settled_ok += 1;
        } else {
            self.failures.push(FailureLine {
                name: name.to_owned(),
                attempts,
                error: error_line.to_owned(),
            });
        }
        self.rows.push(BenchRow {
            name: name.to_owned(),
            ok,
            attempts,
            metrics,
        });
        self.record_journal(name, ok);
        self.persist_failure_report();
    }

    /// Writes `metrics.txt` from everything committed so far: per-job
    /// wall/queue-wait/worker/cycles/IPC rows plus the fan-out's aggregate
    /// speedup and [`ScalingReport`] figures.
    pub fn finish(&self, summary: ExecSummary) {
        let Some(dir) = &self.out_dir else { return };
        let rows = &self.rows;
        let wall_ms = summary.wall.as_secs_f64() * 1e3;
        let cpu_ms: f64 = rows
            .iter()
            .map(|r| r.metrics.wall.as_secs_f64() * 1e3)
            .sum();
        let mean_queue_wait_ms = if rows.is_empty() {
            0.0
        } else {
            rows.iter()
                .map(|r| r.metrics.queue_wait.as_secs_f64() * 1e3)
                .sum::<f64>()
                / rows.len() as f64
        };
        let mut body = String::new();
        let _ = writeln!(body, "jobs={}", rows.len());
        let _ = writeln!(body, "workers={}", summary.workers);
        let _ = writeln!(body, "wall_ms={wall_ms:.1}");
        let _ = writeln!(body, "cpu_ms={cpu_ms:.1}");
        let _ = writeln!(
            body,
            "speedup={:.2}",
            if wall_ms > 0.0 { cpu_ms / wall_ms } else { 1.0 }
        );
        // Host-throughput figures in hostbench's units (simulated cycles per
        // host-second), so a campaign's `--jobs N` scaling can be read
        // against the single-core numbers in `BENCH_PR4.json`.
        let total_cycles: u64 = rows.iter().map(|r| r.metrics.cycles).sum();
        let scaling =
            ScalingReport::new(total_cycles, wall_ms as u64, cpu_ms as u64, summary.workers)
                .with_queue_wait(mean_queue_wait_ms);
        let _ = writeln!(body, "total_cycles={total_cycles}");
        let _ = writeln!(body, "cycles_per_s={:.0}", scaling.cycles_per_s);
        let _ = writeln!(
            body,
            "per_worker_cycles_per_s={:.0}",
            scaling.per_worker_cycles_per_s
        );
        let _ = writeln!(body, "scaling_efficiency={:.3}", scaling.efficiency);
        let _ = writeln!(body, "mean_queue_wait_ms={:.1}", scaling.mean_queue_wait_ms);
        for r in rows {
            let _ = writeln!(
                body,
                "bench={} status={} attempts={} wall_ms={:.1} cycles={} instructions={} \
                 ipc={:.6} queue_wait_ms={:.1} worker={} assignments={} daemon={}",
                r.name,
                if r.ok { "ok" } else { "failed" },
                r.attempts,
                r.metrics.wall.as_secs_f64() * 1e3,
                r.metrics.cycles,
                r.metrics.instructions,
                r.metrics.ipc,
                r.metrics.queue_wait.as_secs_f64() * 1e3,
                r.metrics.worker,
                r.metrics.assignments,
                r.metrics.daemon,
            );
        }
        report_io(atomic_write(&dir.join(METRICS_FILE), body.as_bytes()));
    }

    fn persist_completed(&self, c: &CompletedBench, profilers: &[ProfilerId]) {
        let Some(dir) = &self.out_dir else { return };
        let body = render_completed(c, profilers);
        report_io(atomic_write(
            &result_path(dir, c.run.bench.name),
            body.as_bytes(),
        ));
    }

    fn persist_failed(&self, f: &FailedBench) {
        let Some(dir) = &self.out_dir else { return };
        let body = render_failed(f);
        report_io(atomic_write(&result_path(dir, f.name), body.as_bytes()));
    }

    fn record_journal(&mut self, name: &str, ok: bool) {
        self.journal.push((ok, name.to_owned()));
        let Some(dir) = &self.out_dir else { return };
        let mut body = String::new();
        for (ok, name) in &self.journal {
            let _ = writeln!(body, "{} {name}", if *ok { "done" } else { "failed" });
        }
        report_io(atomic_write(&dir.join(JOURNAL_FILE), body.as_bytes()));
    }

    fn persist_failure_report(&self) {
        let Some(dir) = &self.out_dir else { return };
        let mut body = String::new();
        // Skipped benchmarks completed in an earlier invocation of this
        // campaign, so a resumed run converges to the same report bytes as
        // an uninterrupted one.
        let _ = writeln!(
            body,
            "completed={} failed={}",
            self.settled_ok,
            self.failures.len()
        );
        for f in &self.failures {
            let _ = writeln!(body, "{} attempts={} {}", f.name, f.attempts, f.error);
        }
        report_io(atomic_write(&dir.join(FAILURES_FILE), body.as_bytes()));
    }
}

fn report_io(res: io::Result<()>) {
    if let Err(e) = res {
        eprintln!("campaign: failed to persist result: {e}");
    }
}
