//! The closed profile → transform → measure loop (Section 6, generalized).
//!
//! The paper's imagick case study is a manual loop: profile with TIP, spot
//! the CSR-flush hot spot, fix it by hand, re-measure. This module automates
//! it and — crucially — runs the *same* automated pass guided by *every*
//! profiler in the bank. A time-proportional profile attributes flush time
//! to the flush instruction itself, so the pass finds and hoists it; a
//! skid-prone profile (Software, NCI) attributes the same time to innocent
//! neighbours, the offender stays below threshold, and the pass under-fires.
//! The per-profiler speedup table is therefore a *measured* end-to-end
//! argument for time-proportionality, not a profile-error proxy.
//!
//! Every rewritten program must pass [`tip_pgo::check_equivalence`] against
//! the original before its cycle count is allowed into the report.

use std::fmt::Write as _;

use tip_core::{ProfilerId, SamplerConfig};
use tip_isa::{Granularity, Program};
use tip_ooo::CoreConfig;
use tip_pgo::{check_equivalence, EquivError, PgoConfig, PgoError, PgoPass};
use tip_workloads::{benchmark, SuiteScale};

use crate::run::{run_profiled, run_profiled_budgeted, ProfiledRun, RunError, DEFAULT_INTERVAL};
use crate::table::Table;

/// Observable records compared per equivalence check. The workloads retire
/// ~10^5..10^7 instructions at the scales the loop runs; checking the first
/// two million records covers multiple full loop generations of every
/// workload shape while keeping the check's host cost bounded.
pub const EQUIV_RECORDS: u64 = 2_000_000;

/// One profiler's trip around the loop.
#[derive(Debug)]
pub struct PgoRow {
    /// The profiler whose profile guided the pass.
    pub profiler: ProfilerId,
    /// Cycles of the rewritten program (equals baseline when nothing fired).
    pub optimized_cycles: u64,
    /// Baseline cycles / optimized cycles.
    pub speedup: f64,
    /// What the pass did, one line per rewrite.
    pub actions: Vec<String>,
}

/// The full per-profiler closed-loop result for one workload.
#[derive(Debug)]
pub struct PgoReport {
    /// Workload name.
    pub bench: String,
    /// Scale the loop ran at.
    pub scale: SuiteScale,
    /// Seed shared by profiling, equivalence, and re-measurement runs.
    pub seed: u64,
    /// Cycles of the unmodified program.
    pub baseline_cycles: u64,
    /// IPC of the unmodified program.
    pub baseline_ipc: f64,
    /// One row per profiler in bank order.
    pub rows: Vec<PgoRow>,
    /// Cycles of the hand-optimized variant, for workloads that have one
    /// (imagick) — the "can the automated loop match Section 6?" yardstick.
    pub hand_optimized_cycles: Option<u64>,
}

/// Why the closed loop failed.
#[derive(Debug)]
pub enum PgoLoopError {
    /// A simulation (baseline, hand-optimized, or re-measurement) failed.
    Run(RunError),
    /// The pass itself refused or failed.
    Pass(ProfilerId, PgoError),
    /// A rewrite failed the equivalence check — the transform layer has a
    /// bug; its "speedup" would be meaningless and is never reported.
    NotEquivalent(ProfilerId, EquivError),
}

impl std::fmt::Display for PgoLoopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PgoLoopError::Run(e) => write!(f, "simulation failed: {e}"),
            PgoLoopError::Pass(id, e) => write!(f, "pass under {} failed: {e}", id.label()),
            PgoLoopError::NotEquivalent(id, e) => {
                write!(f, "rewrite under {} is not equivalent: {e}", id.label())
            }
        }
    }
}

impl std::error::Error for PgoLoopError {}

impl From<RunError> for PgoLoopError {
    fn from(e: RunError) -> Self {
        PgoLoopError::Run(e)
    }
}

/// Applies the PGO pass to `program` guided by `guide`'s profile from an
/// already-finished profiled run, proves the rewrite equivalent, and returns
/// the rewritten program with its action log.
///
/// This is the per-profiler loop body, exposed so tests (and the serve
/// layer) can run a single trip without the full bank sweep.
///
/// # Errors
///
/// [`PgoLoopError::Pass`] if the pass fails, [`PgoLoopError::NotEquivalent`]
/// if the rewrite changes the architectural stream.
pub fn optimize_under(
    program: &Program,
    run: &ProfiledRun,
    guide: ProfilerId,
    config: &PgoConfig,
    seed: u64,
) -> Result<(Program, Vec<String>), PgoLoopError> {
    let profile = run
        .bank
        .profile_of(program, guide, Granularity::Instruction);
    let result = PgoPass::new(config.clone())
        .apply(program, &profile)
        .map_err(|e| PgoLoopError::Pass(guide, e))?;
    check_equivalence(
        program,
        &result.program,
        &result.provenance,
        seed,
        EQUIV_RECORDS,
    )
    .map_err(|e| PgoLoopError::NotEquivalent(guide, e))?;
    Ok((result.program, result.actions))
}

/// One pgo job attempt, for the service path (`tipctl submit pgo`): profile
/// `program` under the job's bank (TIP joins the run if the job did not
/// already attach it — the pass needs its guidance), apply the TIP-guided
/// pass, prove the rewrite equivalent, and re-simulate the optimized
/// program under the job's own profilers. The returned run is an ordinary
/// [`ProfiledRun`] of the *optimized* program, so the job's ledger
/// artifacts (`<bench>.result`, journal row, failure line) use the exact
/// formats a plain job uses — only the measured numbers change.
///
/// # Errors
///
/// [`RunError`] from either simulation; [`RunError::Pgo`] when the pass
/// refuses or the rewrite fails the equivalence check.
pub fn pgo_run(
    bench: &str,
    program: &Program,
    core: CoreConfig,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
    seed: u64,
    max_cycles: u64,
) -> Result<ProfiledRun, RunError> {
    let mut bank: Vec<ProfilerId> = profilers.to_vec();
    if !bank.contains(&ProfilerId::Tip) {
        bank.push(ProfilerId::Tip);
    }
    let baseline = run_profiled_budgeted(program, core.clone(), sampler, &bank, seed, max_cycles)?;
    let (optimized, _actions) = optimize_under(
        program,
        &baseline,
        ProfilerId::Tip,
        &PgoConfig::default(),
        seed,
    )
    .map_err(|e| match e {
        PgoLoopError::Run(e) => e,
        other => RunError::Pgo {
            bench: bench.to_owned(),
            message: other.to_string(),
        },
    })?;
    run_profiled_budgeted(&optimized, core, sampler, profilers, seed, max_cycles)
}

/// Runs the closed loop for one workload: profile once under the whole
/// bank, then per profiler apply the pass, prove equivalence, re-simulate,
/// and report the speedup each profiler's view of the program bought.
///
/// # Errors
///
/// Any [`PgoLoopError`]: a failed simulation, a failed pass, or a rewrite
/// that did not survive the equivalence check.
pub fn closed_loop(
    bench: &'static str,
    scale: SuiteScale,
    config: &PgoConfig,
    seed: u64,
) -> Result<PgoReport, PgoLoopError> {
    let program = benchmark(bench, scale).program;
    closed_loop_program(bench, &program, scale, config, seed)
}

/// [`closed_loop`] over an explicit program (for synthetic workloads that
/// are not part of the named suite).
///
/// # Errors
///
/// As [`closed_loop`].
pub fn closed_loop_program(
    bench: &str,
    program: &Program,
    scale: SuiteScale,
    config: &PgoConfig,
    seed: u64,
) -> Result<PgoReport, PgoLoopError> {
    let core = CoreConfig::default();
    let sampler = SamplerConfig::periodic(DEFAULT_INTERVAL);
    let baseline = run_profiled(program, core.clone(), sampler, &ProfilerId::ALL, seed)?;

    let mut rows = Vec::new();
    for guide in ProfilerId::ALL {
        let (optimized, actions) = optimize_under(program, &baseline, guide, config, seed)?;
        let rerun = run_profiled(&optimized, core.clone(), sampler, &[], seed)?;
        rows.push(PgoRow {
            profiler: guide,
            optimized_cycles: rerun.summary.cycles,
            speedup: baseline.summary.cycles as f64 / rerun.summary.cycles as f64,
            actions,
        });
    }

    let hand_optimized_cycles = if bench == "imagick" {
        let hand = tip_workloads::imagick_optimized(scale.dyn_instrs());
        let run = run_profiled(&hand, core, sampler, &[], seed)?;
        Some(run.summary.cycles)
    } else {
        None
    };

    Ok(PgoReport {
        bench: bench.to_owned(),
        scale,
        seed,
        baseline_cycles: baseline.summary.cycles,
        baseline_ipc: baseline.ipc(),
        rows,
        hand_optimized_cycles,
    })
}

impl PgoReport {
    /// The row for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not part of the loop (it always is for reports
    /// from [`closed_loop`]).
    #[must_use]
    pub fn row(&self, id: ProfilerId) -> &PgoRow {
        self.rows
            .iter()
            .find(|r| r.profiler == id)
            .expect("profiler was part of the loop")
    }

    /// Renders the per-profiler speedup table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut t = Table::new(vec![
            "guide".to_owned(),
            "cycles".to_owned(),
            "speedup".to_owned(),
            "rewrites".to_owned(),
        ]);
        t.row(vec![
            "(baseline)".to_owned(),
            self.baseline_cycles.to_string(),
            "1.00x".to_owned(),
            "-".to_owned(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.profiler.label().to_owned(),
                r.optimized_cycles.to_string(),
                format!("{:.2}x", r.speedup),
                r.actions.len().to_string(),
            ]);
        }
        if let Some(hand) = self.hand_optimized_cycles {
            t.row(vec![
                "(hand-opt)".to_owned(),
                hand.to_string(),
                format!("{:.2}x", self.baseline_cycles as f64 / hand as f64),
                "-".to_owned(),
            ]);
        }
        t.render()
    }

    /// Serializes the report as one JSON object (hand-written — the
    /// workspace deliberately has no JSON dependency; same idiom as
    /// `hostbench::HostBenchReport::to_json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"tip-pgo-v1\",\n");
        let _ = writeln!(s, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(s, "  \"scale\": \"{:?}\",", self.scale);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"baseline_cycles\": {},", self.baseline_cycles);
        let _ = writeln!(s, "  \"baseline_ipc\": {:.4},", self.baseline_ipc);
        if let Some(hand) = self.hand_optimized_cycles {
            let _ = writeln!(s, "  \"hand_optimized_cycles\": {hand},");
        }
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"guide\": \"{}\", \"cycles\": {}, \"speedup\": {:.4}, \"rewrites\": {}}}",
                r.profiler.label(),
                r.optimized_cycles,
                r.speedup,
                r.actions.len(),
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: the automated loop reproduces the paper's Section 6 case
    /// study. The TIP-guided pass applied to `imagick_original` must match
    /// or beat the hand-written `imagick_optimized` — and must strictly beat
    /// the same pass guided by the skid-prone profilers.
    #[test]
    fn tip_guided_imagick_matches_hand_optimization() {
        let report = closed_loop("imagick", SuiteScale::Test, &PgoConfig::default(), 42)
            .expect("closed loop completes");
        let tip = report.row(ProfilerId::Tip);
        let hand = report
            .hand_optimized_cycles
            .expect("imagick has a hand-optimized variant");

        assert!(
            tip.optimized_cycles <= hand,
            "TIP-guided ({} cycles) must match or beat hand-optimized ({hand} cycles)",
            tip.optimized_cycles,
        );
        assert!(tip.speedup > 1.2, "flush hoisting must pay: {report:#?}");

        // The same pass guided by a skid-prone profile misses the flushes.
        let worst_skid = report
            .row(ProfilerId::Nci)
            .speedup
            .min(report.row(ProfilerId::Software).speedup);
        assert!(
            tip.speedup > worst_skid,
            "TIP guidance must strictly beat at least one skid-prone guide:\n{}",
            report.table()
        );
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = closed_loop("imagick", SuiteScale::Test, &PgoConfig::default(), 7)
            .expect("closed loop completes");
        let table = report.table();
        assert!(table.contains("TIP") && table.contains("(hand-opt)"));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"tip-pgo-v1\""));
        assert!(json.contains("\"guide\": \"TIP\""));
    }
}
