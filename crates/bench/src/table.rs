//! Minimal aligned text tables for the figure/table binaries.

/// A simple left-aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["tiny", "1"]);
        t.row(["a-long-name", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("tiny"));
        let col = lines[3].find("123456").expect("value present");
        assert_eq!(lines[2].find('1').expect("value present"), col);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }
}
