//! Experiment harness for the TIP reproduction.
//!
//! One module per concern: [`run`] executes a benchmark under the full
//! profiler bank, [`table`] renders the paper-style text tables,
//! [`experiments`] implements the data collection behind every figure and
//! table of the paper (each `src/bin/figNN.rs` binary is a thin wrapper),
//! and [`campaign`] adds the fault-tolerant sweep layer (per-benchmark
//! panic isolation, bounded reseeded retries, incremental persistence).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod experiments;
pub mod run;
pub mod table;

pub use campaign::{run_suite_campaign, CampaignConfig, CampaignOutcome};
pub use run::{run_profiled, ProfiledRun, RunError, DEFAULT_INTERVAL};
