//! Experiment harness for the TIP reproduction.
//!
//! One module per concern: [`run`] executes a benchmark under the full
//! profiler bank, [`table`] renders the paper-style text tables,
//! [`experiments`] implements the data collection behind every figure and
//! table of the paper (each `src/bin/figNN.rs` binary is a thin wrapper),
//! [`checkpoint`] adds mid-run `TIPS` snapshots with crash-safe resume, and
//! [`campaign`] adds the fault-tolerant sweep layer (per-benchmark panic
//! isolation, bounded reseeded retries, crash-consistent incremental
//! persistence, and journal-driven resume).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod checkpoint;
pub mod experiments;
pub mod run;
pub mod table;

pub use campaign::{run_suite_campaign, CampaignCli, CampaignConfig, CampaignOutcome, RunCtx};
pub use checkpoint::{
    load_checkpoint, run_profiled_checkpointed, save_checkpoint, CheckpointSpec, LoadedCheckpoint,
};
pub use run::{run_profiled, ProfiledRun, RunError, DEFAULT_INTERVAL};
