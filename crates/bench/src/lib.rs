//! Experiment harness for the TIP reproduction.
//!
//! One module per concern: [`run`] executes a benchmark under the full
//! profiler bank, [`table`] renders the paper-style text tables,
//! [`experiments`] implements the data collection behind every figure and
//! table of the paper (each `src/bin/figNN.rs` binary is a thin wrapper),
//! [`checkpoint`] adds mid-run `TIPS` snapshots with crash-safe resume,
//! [`executor`] turns a sweep into explicit [`Job`](executor::Job) specs
//! fanned out over worker threads with a deterministic merge, and
//! [`campaign`] adds the fault-tolerant sweep layer on top (per-benchmark
//! panic isolation, bounded reseeded retries, crash-consistent incremental
//! persistence, and journal-driven resume), [`ledger`] owns the byte-stable
//! on-disk artifact formats that campaign and the `tip-serve` daemon share,
//! [`live`] aggregates streaming profile deltas into an in-memory view a
//! campaign can be queried through *while it runs*, and [`hostbench`]
//! measures host throughput (simulated cycles per host-second) over a fixed
//! matrix so each PR extends a reproducible perf trajectory
//! (`BENCH_PR4.json`). [`pgo`] closes the paper's Section 6 loop: it runs
//! the `tip-pgo` rewrite pass guided by every profiler's profile of the same
//! run and reports the speedup each guide's view of the program bought
//! (`tip-pgo` binary, `BENCH_PR10.json`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod checkpoint;
pub mod executor;
pub mod experiments;
pub mod hostbench;
pub mod ledger;
pub mod live;
pub mod pgo;
pub mod run;
pub mod table;

pub use campaign::{run_suite_campaign, CampaignCli, CampaignConfig, CampaignOutcome};
pub use checkpoint::{
    load_checkpoint, run_profiled_checkpointed, run_profiled_checkpointed_streaming,
    save_checkpoint, CheckpointSpec, LoadedCheckpoint,
};
pub use executor::{
    default_workers, execute, execute_streaming, run_job, run_job_beating, run_job_streaming,
    ExecSummary, Heartbeat, Job, JobMetrics, JobOutcome, RunCtx, Runner, SpecRunner,
};
pub use hostbench::{run_hostbench, HostBenchOptions, HostBenchReport, ScalingReport};
pub use ledger::Ledger;
pub use live::{BenchView, DeltaEvent, DeltaSink, LiveAggregate, LiveView};
pub use pgo::{closed_loop, closed_loop_program, PgoLoopError, PgoReport, PgoRow};
pub use run::{
    run_profiled, run_profiled_streaming, ProfiledRun, RunError, StreamObserver, DEFAULT_INTERVAL,
    DEFAULT_STREAM_CYCLES,
};
