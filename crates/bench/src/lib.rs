//! Experiment harness for the TIP reproduction.
//!
//! One module per concern: [`run`] executes a benchmark under the full
//! profiler bank, [`table`] renders the paper-style text tables, and
//! [`experiments`] implements the data collection behind every figure and
//! table of the paper (each `src/bin/figNN.rs` binary is a thin wrapper).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod run;
pub mod table;

pub use run::{run_profiled, ProfiledRun, DEFAULT_INTERVAL};
