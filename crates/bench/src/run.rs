//! Running a benchmark under the full profiler bank.

use std::error::Error;
use std::fmt;

use tip_core::{BankDeltas, BankResult, ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::{Granularity, Program};
use tip_mem::MemStats;
use tip_ooo::{Core, CoreConfig, CoreStats, RunExit, RunSummary, SimError};

/// The default sampling interval in cycles for our scaled-down runs.
///
/// The paper samples at 4 kHz on a 3.2 GHz core — one sample per 800 000
/// cycles over complete SPEC runs (hours of simulated time, ~10^5..10^6
/// samples). Our benchmarks run for ~10^7 cycles, so we keep the *number of
/// samples per run* in a comparable range by shrinking the interval; the
/// value is odd to avoid aliasing with tight loops' commit patterns (see
/// Figure 11b / the Shannon–Nyquist discussion).
pub const DEFAULT_INTERVAL: u64 = 149;

/// Default simulated-cycle period between streaming delta flushes — small
/// enough that a live view updates many times over a benchmark's ~10^7
/// cycles, large enough that the cumulative-recompute flush stays well
/// under 3% of host time (see `hostbench`).
pub const DEFAULT_STREAM_CYCLES: u64 = 250_000;

/// Cycle budget used by the experiment harness (well above any benchmark's
/// natural length). Synthetic programs always halt, so a run that exhausts
/// this budget is a simulator or workload bug — it fails with the dedicated
/// [`SimError::CycleLimit`] variant, reported distinctly from a watchdog
/// [`SimError::Livelock`], never silently folded into a "completed" summary.
pub const MAX_CYCLES: u64 = 400_000_000;

/// Everything one profiled benchmark run produced.
#[derive(Debug)]
pub struct ProfiledRun {
    /// Profiler samples and the Oracle accounting.
    pub bank: BankResult,
    /// How the run ended.
    pub summary: RunSummary,
    /// Core counters.
    pub stats: CoreStats,
    /// Memory-system counters.
    pub mem_stats: MemStats,
}

impl ProfiledRun {
    /// Instructions per cycle of the run.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// A benchmark run that failed to produce a profile.
#[derive(Debug)]
pub enum RunError {
    /// The simulation did not complete: a livelock caught by the core's
    /// forward-progress watchdog, or an exhausted cycle budget.
    Sim {
        /// Name of the benchmark that failed.
        bench: String,
        /// The structured simulator error.
        source: SimError,
    },
    /// The benchmark panicked mid-run (caught by the campaign isolation
    /// layer, see [`crate::campaign`]).
    Panicked {
        /// Name of the benchmark that failed.
        bench: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A checkpoint could not be written, or an existing one failed to
    /// restore: damaged bytes, a stale format version, or state captured
    /// under a different configuration (see [`crate::checkpoint`]).
    Checkpoint {
        /// Name of the benchmark that failed.
        bench: String,
        /// The classified trace/snapshot error.
        source: tip_trace::TraceError,
    },
    /// A profile-guided-optimization job's rewrite pass failed, or the
    /// rewritten program did not survive the semantic-equivalence check
    /// (see [`crate::pgo`]). The baseline run itself was fine — this is a
    /// transform-layer refusal, never a simulator fault.
    Pgo {
        /// Name of the benchmark that failed.
        bench: String,
        /// The pass or equivalence failure, rendered.
        message: String,
    },
}

impl RunError {
    /// Name of the benchmark that failed.
    #[must_use]
    pub fn bench(&self) -> &str {
        match self {
            RunError::Sim { bench, .. }
            | RunError::Panicked { bench, .. }
            | RunError::Checkpoint { bench, .. }
            | RunError::Pgo { bench, .. } => bench,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim { bench, source } => {
                write!(f, "benchmark `{bench}` failed: {source}")
            }
            RunError::Panicked { bench, message } => {
                write!(f, "benchmark `{bench}` panicked: {message}")
            }
            RunError::Checkpoint { bench, source } => {
                write!(f, "benchmark `{bench}` checkpoint failed: {source}")
            }
            RunError::Pgo { bench, message } => {
                write!(f, "benchmark `{bench}` pgo pass failed: {message}")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Sim { source, .. } => Some(source),
            RunError::Panicked { .. } | RunError::Pgo { .. } => None,
            RunError::Checkpoint { source, .. } => Some(source),
        }
    }
}

/// Runs `program` on a core with `config`, attaching the Oracle and the
/// given profilers, all sampling on the same schedule.
///
/// # Errors
///
/// [`RunError::Sim`] if the run livelocks (watchdog) or exhausts the
/// internal cycle budget instead of terminating — synthetic programs always
/// halt, so either means a simulator or workload bug, now reported with a
/// pipeline-state dump instead of a panic.
pub fn run_profiled(
    program: &Program,
    config: CoreConfig,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
    seed: u64,
) -> Result<ProfiledRun, RunError> {
    run_profiled_budgeted(program, config, sampler, profilers, seed, MAX_CYCLES)
}

/// [`run_profiled`] with an explicit cycle budget instead of the harness
/// default [`MAX_CYCLES`].
///
/// # Errors
///
/// [`RunError::Sim`] carrying [`SimError::Livelock`] when the watchdog
/// catches a commit livelock, or [`SimError::CycleLimit`] when `max_cycles`
/// elapse while the core is still making progress — two distinct failure
/// modes, never conflated.
pub fn run_profiled_budgeted(
    program: &Program,
    config: CoreConfig,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
    seed: u64,
    max_cycles: u64,
) -> Result<ProfiledRun, RunError> {
    run_profiled_streaming(program, config, sampler, profilers, seed, max_cycles, None)
}

/// How often a streaming run flushes profile deltas, and where they go.
///
/// The observer sees quantized cumulative increments
/// ([`tip_core::BankDeltas`]); it never touches the samples, so enabling it
/// cannot change the run's final profile — streaming is pure observation.
pub struct StreamObserver<'a> {
    /// Simulated cycles between delta flushes (≥ 1; a final flush always
    /// happens at completion regardless).
    pub every_cycles: u64,
    /// Receives each flush.
    pub observe: &'a dyn Fn(BankDeltas),
}

impl fmt::Debug for StreamObserver<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamObserver")
            .field("every_cycles", &self.every_cycles)
            .finish_non_exhaustive()
    }
}

/// [`run_profiled_budgeted`] with an optional streaming observer: with
/// `stream` set, the simulation advances in slices of
/// [`StreamObserver::every_cycles`] and flushes function-granularity
/// profile deltas at every slice boundary plus once at completion. The
/// simulation itself is identical — `Core::run` resumes bit-exactly across
/// slice boundaries — so the returned [`ProfiledRun`] matches the
/// non-streaming call byte for byte.
///
/// # Errors
///
/// As [`run_profiled_budgeted`].
pub fn run_profiled_streaming(
    program: &Program,
    config: CoreConfig,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
    seed: u64,
    max_cycles: u64,
    stream: Option<StreamObserver<'_>>,
) -> Result<ProfiledRun, RunError> {
    let mut bank = ProfilerBank::new(program, sampler, profilers);
    let mut core = Core::new(program, config, seed);
    let sim_err = |source| RunError::Sim {
        bench: program.name().to_owned(),
        source,
    };
    let summary = match &stream {
        None => core
            .run_to_completion(&mut bank, max_cycles)
            .map_err(sim_err)?,
        Some(observer) => {
            let map = program.symbol_map(Granularity::Function);
            let every = observer.every_cycles.max(1);
            loop {
                let stop = core.stats().cycles.saturating_add(every).min(max_cycles);
                let summary = core.run(&mut bank, stop);
                (observer.observe)(bank.flush_deltas(&map));
                match summary.exit {
                    RunExit::Halted | RunExit::StreamEnd => break summary,
                    RunExit::Stuck(diag) => {
                        return Err(sim_err(SimError::Livelock(diag)));
                    }
                    RunExit::CycleLimit => {
                        if stop >= max_cycles {
                            return Err(sim_err(SimError::CycleLimit {
                                max_cycles,
                                committed: summary.instructions,
                            }));
                        }
                    }
                }
            }
        }
    };
    let stats = *core.stats();
    let mem_stats = core.mem_stats();
    Ok(ProfiledRun {
        bank: bank.finish(),
        summary,
        stats,
        mem_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_workloads::{benchmark, SuiteScale};

    #[test]
    fn profiled_run_completes_and_reports() {
        let b = benchmark("exchange2", SuiteScale::Test);
        let run = run_profiled(
            &b.program,
            CoreConfig::default(),
            SamplerConfig::periodic(211),
            &[ProfilerId::Tip, ProfilerId::Nci],
            1,
        )
        .expect("test benchmark terminates");
        assert!(run.summary.instructions > 10_000);
        assert!(run.ipc() > 0.0);
        assert_eq!(run.bank.total_cycles, run.summary.cycles);
        assert!(!run.bank.samples_of(ProfilerId::Tip).is_empty());
    }

    #[test]
    fn budget_exhaustion_is_a_distinct_error_not_a_livelock() {
        let b = benchmark("exchange2", SuiteScale::Test);
        // A budget far below the benchmark's natural length: the core is
        // healthy and committing, so the watchdog must stay silent and the
        // failure must classify as CycleLimit carrying the exact budget.
        let err = run_profiled_budgeted(
            &b.program,
            CoreConfig::default(),
            SamplerConfig::periodic(211),
            &[ProfilerId::Tip],
            1,
            1_000,
        )
        .expect_err("1k cycles cannot finish the benchmark");
        match &err {
            RunError::Sim {
                bench,
                source:
                    source @ SimError::CycleLimit {
                        max_cycles,
                        committed,
                    },
            } => {
                assert_eq!(bench, "exchange2");
                assert_eq!(*max_cycles, 1_000);
                assert!(*committed > 0, "the core was making progress");
                assert!(
                    !matches!(source, SimError::Livelock(_)),
                    "budget exhaustion must not be conflated with livelock"
                );
                assert!(source.to_string().contains("cycle budget exhausted"));
            }
            other => panic!("expected CycleLimit, got {other:?}"),
        }
    }
}
