//! Job-based parallel execution with a deterministic merge.
//!
//! The paper's evaluation is embarrassingly parallel: every (benchmark ×
//! profiler-config × seed) run is an independent deterministic simulation,
//! yet the original harness executed them serially, paying wall-clock =
//! sum-of-runs. This module decomposes a sweep into explicit [`Job`] specs
//! and fans them out over a pool of `std::thread` workers pulling from a
//! shared queue, while keeping every observable output **byte-identical to
//! a serial run**:
//!
//! * Workers never touch campaign-level files. Each finished job is sent to
//!   a single **committer** (the thread that called [`execute`]), which
//!   buffers out-of-order completions and applies them in canonical job
//!   order through the caller's commit closure — so journals, result files,
//!   and failure reports are written in the same order, with the same
//!   contents, regardless of worker count or completion order.
//! * Seeds derive from the job spec (`job.seed + attempt`), never from
//!   which worker picked the job up.
//! * Per-worker panic isolation reuses the campaign's `catch_unwind`
//!   machinery: a panicking benchmark costs one attempt, not a worker (and
//!   never the whole process).
//!
//! Per-job wall-clock and simulation counters are collected into
//! [`JobMetrics`] so the speedup from `--jobs N` is observable (see the
//! campaign's `metrics.txt`).

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::checkpoint::{run_profiled_checkpointed_streaming, CheckpointSpec};
use crate::live::{DeltaEvent, DeltaSink};
use crate::run::{
    run_profiled_streaming, ProfiledRun, RunError, StreamObserver, DEFAULT_INTERVAL,
    DEFAULT_STREAM_CYCLES, MAX_CYCLES,
};
use tip_core::{BankDeltas, ProfilerId, SamplerConfig};
use tip_ooo::CoreConfig;
use tip_workloads::Benchmark;

/// Everything needed to run one benchmark under the profiler bank: the
/// complete, self-contained spec of a unit of campaign work.
///
/// A job is deliberately *data*, not behaviour — the same `Vec<Job>` can be
/// replayed serially, fanned out over threads, or (later) shipped to another
/// machine, and the results are identical because nothing about scheduling
/// leaks into the spec.
#[derive(Debug, Clone)]
pub struct Job {
    /// The benchmark (name, class, generated program).
    pub bench: Benchmark,
    /// Base seed; attempt `k` (1-based) runs with `seed + k - 1`.
    pub seed: u64,
    /// Core configuration for every attempt.
    pub core: CoreConfig,
    /// Sampling schedule.
    pub sampler: SamplerConfig,
    /// Profilers attached to the run.
    pub profilers: Vec<ProfilerId>,
    /// Mid-run checkpoint paths and period, when enabled.
    pub checkpoint: Option<CheckpointSpec>,
    /// Attempts before the job is written off as failed (≥ 1).
    pub max_attempts: u32,
    /// Cycle budget; exhausting it fails the attempt with the dedicated
    /// [`tip_ooo::SimError::CycleLimit`] variant.
    pub max_cycles: u64,
    /// Run the profile-guided-optimization loop instead of a plain
    /// profiled run: profile, apply the TIP-guided [`crate::pgo`] pass,
    /// prove the rewrite equivalent, and report the *optimized* program's
    /// run through the same ledger formats (see [`crate::pgo::pgo_run`]).
    pub pgo: bool,
}

impl Job {
    /// A plain job for `bench`: default core, one attempt, the standard
    /// sampling interval, no checkpointing, the harness cycle budget.
    #[must_use]
    pub fn new(bench: Benchmark, seed: u64, profilers: &[ProfilerId]) -> Self {
        Job {
            bench,
            seed,
            core: CoreConfig::default(),
            sampler: SamplerConfig::periodic(DEFAULT_INTERVAL),
            profilers: profilers.to_vec(),
            checkpoint: None,
            max_attempts: 1,
            max_cycles: MAX_CYCLES,
            pgo: false,
        }
    }
}

/// A liveness beacon a worker shares with whatever supervises it.
///
/// The lease machinery in `tip-serve` grants each claimed job a deadline;
/// a reaper that sees the beacon still ticking extends the lease instead of
/// declaring the worker dead. [`run_job`] ticks once per attempt, so even a
/// non-cooperating runner beats at attempt granularity; a cooperating
/// runner (a chunked, checkpointing simulation) can tick mid-attempt via
/// [`RunCtx::heartbeat`]. The default ([`Heartbeat::noop`]) beacon is
/// disconnected — ticks go nowhere and [`Heartbeat::beats`] stays 0 —
/// so the serial campaign path pays nothing for the plumbing.
#[derive(Clone, Debug, Default)]
pub struct Heartbeat {
    beats: Option<Arc<AtomicU64>>,
}

impl Heartbeat {
    /// A disconnected beacon: ticks are dropped.
    #[must_use]
    pub fn noop() -> Self {
        Heartbeat::default()
    }

    /// A live beacon; clones share the same counter.
    #[must_use]
    pub fn live() -> Self {
        Heartbeat {
            beats: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Signals liveness. Cheap and lock-free; safe from any thread.
    pub fn tick(&self) {
        if let Some(beats) = &self.beats {
            beats.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Ticks observed so far (0 for a disconnected beacon).
    #[must_use]
    pub fn beats(&self) -> u64 {
        self.beats.as_ref().map_or(0, |b| b.load(Ordering::Relaxed))
    }
}

/// Everything the executor hands a runner for one attempt.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Seed for this attempt (`job.seed + attempt - 1`).
    pub seed: u64,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Checkpointing paths and period, when enabled.
    pub checkpoint: Option<CheckpointSpec>,
    /// The worker's liveness beacon; long-running cooperative runners tick
    /// it to keep their lease alive (see `tip-serve`'s reaper).
    pub heartbeat: Heartbeat,
    /// Where streaming profile deltas go. Disconnected by default
    /// ([`DeltaSink::noop`]) — the runner then skips flushing entirely, so
    /// non-streaming paths are bit-for-bit the code they always were.
    pub delta_sink: DeltaSink,
}

/// Executes one attempt of a job.
///
/// The runner is shared by every worker thread (`Sync`) and must derive all
/// run-to-run variation from the job spec and [`RunCtx`] — never from
/// ambient state — or the deterministic-merge guarantee breaks. Closures of
/// the right shape implement it automatically; [`SpecRunner`] is the
/// production implementation that simply runs the spec.
pub trait Runner: Sync {
    /// Runs one attempt of `job`.
    ///
    /// # Errors
    ///
    /// A [`RunError`] for the attempt; the executor retries up to
    /// [`Job::max_attempts`] with reseeded contexts.
    fn run(&self, job: &Job, ctx: &RunCtx) -> Result<ProfiledRun, RunError>;
}

impl<F> Runner for F
where
    F: Fn(&Job, &RunCtx) -> Result<ProfiledRun, RunError> + Sync,
{
    fn run(&self, job: &Job, ctx: &RunCtx) -> Result<ProfiledRun, RunError> {
        self(job, ctx)
    }
}

/// The production runner: executes exactly what the [`Job`] spec says —
/// checkpointed when the context carries a [`CheckpointSpec`], plain
/// otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecRunner;

impl Runner for SpecRunner {
    fn run(&self, job: &Job, ctx: &RunCtx) -> Result<ProfiledRun, RunError> {
        let bench = job.bench.name;
        if job.pgo {
            // The pgo loop simulates twice (baseline + optimized) and its
            // rewrite invalidates any mid-run snapshot, so pgo jobs neither
            // checkpoint nor stream deltas.
            return crate::pgo::pgo_run(
                bench,
                &job.bench.program,
                job.core.clone(),
                job.sampler,
                &job.profilers,
                ctx.seed,
                job.max_cycles,
            );
        }
        let (attempt, sink) = (ctx.attempt, &ctx.delta_sink);
        let observe = move |deltas: BankDeltas| {
            sink.emit(DeltaEvent {
                bench: bench.to_owned(),
                attempt,
                deltas,
            });
        };
        let stream = ctx.delta_sink.is_live().then_some(StreamObserver {
            every_cycles: DEFAULT_STREAM_CYCLES,
            observe: &observe,
        });
        match &ctx.checkpoint {
            Some(spec) => run_profiled_checkpointed_streaming(
                &job.bench.program,
                job.core.clone(),
                job.sampler,
                &job.profilers,
                ctx.seed,
                spec,
                job.max_cycles,
                stream,
            ),
            None => run_profiled_streaming(
                &job.bench.program,
                job.core.clone(),
                job.sampler,
                &job.profilers,
                ctx.seed,
                job.max_cycles,
                stream,
            ),
        }
    }
}

/// Timing and simulation counters for one finished job (success or not).
///
/// Wall-clock is host time and therefore *not* part of the deterministic
/// outputs; it lands only in `metrics.txt`, never in result files.
#[derive(Debug, Clone, Copy)]
pub struct JobMetrics {
    /// Host wall-clock the job spent across all its attempts.
    pub wall: Duration,
    /// Host time the job sat in the queue before a worker picked it up —
    /// the difference between campaign wall-clock and simulation time that
    /// [`crate::hostbench::ScalingReport`] previously could not explain.
    pub queue_wait: Duration,
    /// Index of the worker that ran the job (0 for the inline serial path).
    /// Scheduling-dependent, so it lands only in `metrics.txt`, never in
    /// the deterministic result files.
    pub worker: usize,
    /// Times the job was assigned to a worker (1 = never reassigned).
    /// Values above 1 mean an earlier assignment's lease expired and the
    /// job was handed to a fresh worker; like `worker`, this is host-side
    /// accounting that lands only in `metrics.txt` — the committed result
    /// always comes from exactly one assignment, so the deterministic
    /// artifacts never see it.
    pub assignments: u32,
    /// Fleet daemon that ran the job (0 = this process ran it locally).
    /// Like `worker`, host-side attribution that lands only in
    /// `metrics.txt`.
    pub daemon: u32,
    /// Simulated cycles of the successful attempt (0 if the job failed).
    pub cycles: u64,
    /// Committed instructions of the successful attempt (0 if failed).
    pub instructions: u64,
    /// Instructions per cycle of the successful attempt (0.0 if failed).
    pub ipc: f64,
}

/// One job's outcome, delivered to the commit closure in canonical order.
#[derive(Debug)]
pub struct JobOutcome {
    /// Position of the job in the submitted slice.
    pub index: usize,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// The profiled run, or the error of the final attempt.
    pub result: Result<ProfiledRun, RunError>,
    /// Timing and counters for `metrics.txt`.
    pub metrics: JobMetrics,
}

/// What one [`execute`] call did, for the campaign's `metrics.txt`.
#[derive(Debug, Clone, Copy)]
pub struct ExecSummary {
    /// Worker threads actually used (after capping by job count).
    pub workers: usize,
    /// Wall-clock of the whole fan-out, queue to last commit.
    pub wall: Duration,
}

/// The default worker count: everything the host offers.
#[must_use]
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs every job in `jobs` through `runner` on `workers` threads and
/// delivers each [`JobOutcome`] to `commit` **in job order** (index 0, 1,
/// …), regardless of completion order.
///
/// `commit` runs on the calling thread only — it is the single committer
/// that owns all campaign-level file I/O. Workers pull jobs from a shared
/// queue (so a slow job never idles the pool), buffer nothing on disk, and
/// send finished outcomes back over a channel. A panic inside the runner is
/// caught per attempt and surfaces as [`RunError::Panicked`]; worker threads
/// themselves never unwind.
///
/// `workers` is clamped to `1..=jobs.len()`; `workers == 1` runs inline on
/// the calling thread with no queue at all, which is also the path that
/// *defines* the byte-identical reference behaviour.
pub fn execute<R, C>(jobs: &[Job], runner: &R, workers: usize, commit: C) -> ExecSummary
where
    R: Runner,
    C: FnMut(JobOutcome),
{
    execute_streaming(jobs, runner, workers, &DeltaSink::noop(), commit)
}

/// [`execute`] with a live [`DeltaSink`]: every worker threads the sink
/// into its jobs' [`RunCtx`], so mid-run profile deltas stream to a shared
/// aggregate (see [`crate::live::LiveAggregate`]) *while* the committer
/// still applies settled outcomes in canonical order. Deltas arrive in
/// completion order — they are commutative increments, so the aggregate is
/// order-independent — and the deterministic artifacts never see them.
pub fn execute_streaming<R, C>(
    jobs: &[Job],
    runner: &R,
    workers: usize,
    delta_sink: &DeltaSink,
    mut commit: C,
) -> ExecSummary
where
    R: Runner,
    C: FnMut(JobOutcome),
{
    let started = Instant::now();
    let workers = workers.clamp(1, jobs.len().max(1));
    let beacon = Heartbeat::noop();
    if workers == 1 {
        for (index, job) in jobs.iter().enumerate() {
            // Inline path: the "queue" is the jobs ahead of this one, so the
            // wait is simply how long the call has been running when the job
            // is picked up.
            commit(run_job_streaming(
                index,
                job,
                runner,
                started.elapsed(),
                0,
                &beacon,
                delta_sink,
            ));
        }
        return ExecSummary {
            workers,
            wall: started.elapsed(),
        };
    }

    // Shared queue: a claim counter over the job slice. Workers race to
    // claim the next index; whichever thread is free takes the next job,
    // which is all the stealing a fixed job list needs.
    let next_job = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<JobOutcome>();
    thread::scope(|s| {
        for worker in 0..workers {
            let tx = tx.clone();
            let next_job = &next_job;
            let queued = started;
            let beacon = &beacon;
            s.spawn(move || loop {
                let index = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                // All jobs are enqueued at once, so claim time *is* the
                // queue wait — the figure the server's stats endpoint and
                // `ScalingReport` use to separate queueing from compute.
                let wait = queued.elapsed();
                let outcome =
                    run_job_streaming(index, job, runner, wait, worker, beacon, delta_sink);
                if tx.send(outcome).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // The committer: reorder completions into canonical job order so
        // every file write happens in the same sequence as a serial run.
        let mut pending = std::collections::BTreeMap::new();
        let mut next_commit = 0usize;
        for outcome in rx {
            pending.insert(outcome.index, outcome);
            while let Some(outcome) = pending.remove(&next_commit) {
                next_commit += 1;
                commit(outcome);
            }
        }
        debug_assert!(pending.is_empty(), "committer drained every outcome");
    });
    ExecSummary {
        workers,
        wall: started.elapsed(),
    }
}

/// Runs one job to settlement: bounded reseeded retries with per-attempt
/// panic isolation. This is the exact retry ladder the serial campaign used,
/// now shared by every worker — and public so external schedulers (the
/// `tip-serve` daemon pulls jobs off a network queue) reuse the same
/// semantics instead of reimplementing them.
///
/// `queue_wait` is how long the job sat queued before this call, and
/// `worker` identifies the thread running it; both are host-side observations
/// recorded into [`JobMetrics`] verbatim.
pub fn run_job<R: Runner>(
    index: usize,
    job: &Job,
    runner: &R,
    queue_wait: Duration,
    worker: usize,
) -> JobOutcome {
    run_job_beating(index, job, runner, queue_wait, worker, &Heartbeat::noop())
}

/// [`run_job`] with a live [`Heartbeat`]: the beacon ticks at every attempt
/// boundary (and cooperative runners may tick it mid-attempt through
/// [`RunCtx::heartbeat`]), so a lease supervisor can tell a slow worker
/// from a dead one.
pub fn run_job_beating<R: Runner>(
    index: usize,
    job: &Job,
    runner: &R,
    queue_wait: Duration,
    worker: usize,
    heartbeat: &Heartbeat,
) -> JobOutcome {
    run_job_streaming(
        index,
        job,
        runner,
        queue_wait,
        worker,
        heartbeat,
        &DeltaSink::noop(),
    )
}

/// [`run_job_beating`] with a live [`DeltaSink`]: each attempt's context
/// carries the sink, so a cooperating runner (the production [`SpecRunner`])
/// streams profile deltas mid-run. The job's settled outcome is unaffected
/// — streaming observes the run, it never changes it.
#[allow(clippy::too_many_arguments)]
pub fn run_job_streaming<R: Runner>(
    index: usize,
    job: &Job,
    runner: &R,
    queue_wait: Duration,
    worker: usize,
    heartbeat: &Heartbeat,
    delta_sink: &DeltaSink,
) -> JobOutcome {
    let started = Instant::now();
    let attempts_cap = job.max_attempts.max(1);
    let mut last_err: Option<RunError> = None;
    let mut attempts = 0;
    let mut done: Option<ProfiledRun> = None;
    for attempt in 0..attempts_cap {
        attempts = attempt + 1;
        heartbeat.tick();
        let ctx = RunCtx {
            seed: job.seed.wrapping_add(u64::from(attempt)),
            attempt: attempts,
            checkpoint: job.checkpoint.clone(),
            heartbeat: heartbeat.clone(),
            delta_sink: delta_sink.clone(),
        };
        match panic::catch_unwind(AssertUnwindSafe(|| runner.run(job, &ctx))) {
            Ok(Ok(run)) => {
                done = Some(run);
                break;
            }
            Ok(Err(err)) => last_err = Some(err),
            Err(payload) => {
                last_err = Some(RunError::Panicked {
                    bench: job.bench.name.to_owned(),
                    message: panic_message(payload.as_ref()),
                });
            }
        }
    }
    let wall = started.elapsed();
    let (result, metrics) = match done {
        Some(run) => {
            let metrics = JobMetrics {
                wall,
                queue_wait,
                worker,
                assignments: 1,
                daemon: 0,
                cycles: run.summary.cycles,
                instructions: run.summary.instructions,
                ipc: run.ipc(),
            };
            (Ok(run), metrics)
        }
        None => (
            Err(last_err.unwrap_or(RunError::Panicked {
                bench: job.bench.name.to_owned(),
                message: "no attempt ran".to_owned(),
            })),
            JobMetrics {
                wall,
                queue_wait,
                worker,
                assignments: 1,
                daemon: 0,
                cycles: 0,
                instructions: 0,
                ipc: 0.0,
            },
        ),
    };
    JobOutcome {
        index,
        attempts,
        result,
        metrics,
    }
}

/// Best-effort string form of a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// A whole profiled run has to be able to move to a worker thread and its
// outcome back to the committer; regressing these bounds (an `Rc`, a
// non-`Send` trait object) must fail the build here, not at a distant
// `thread::scope` call.
const _: () = {
    const fn send<T: Send>() {}
    const fn sync<T: Sync>() {}
    send::<Job>();
    sync::<Job>();
    send::<JobOutcome>();
    send::<RunError>();
    sync::<SpecRunner>();
    send::<DeltaSink>();
    sync::<DeltaSink>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use tip_workloads::{benchmark, SuiteScale};

    fn job(name: &'static str, attempts: u32) -> Job {
        Job {
            sampler: SamplerConfig::periodic(211),
            max_attempts: attempts,
            ..Job::new(benchmark(name, SuiteScale::Test), 7, &[ProfilerId::Tip])
        }
    }

    #[test]
    fn outcomes_commit_in_job_order_on_any_worker_count() {
        let jobs: Vec<Job> = ["exchange2", "mcf", "lbm", "gcc"]
            .into_iter()
            .map(|n| job(n, 1))
            .collect();
        for workers in [1, 2, 4, 8] {
            let mut seen = Vec::new();
            let summary = execute(&jobs, &SpecRunner, workers, |out| {
                assert!(out.result.is_ok(), "{:?}", out.result);
                assert!(
                    out.metrics.worker < workers.min(jobs.len()),
                    "worker {} out of range for {workers} workers",
                    out.metrics.worker
                );
                seen.push(out.index);
            });
            assert_eq!(seen, vec![0, 1, 2, 3], "workers={workers}");
            assert_eq!(summary.workers, workers.min(jobs.len()));
        }
    }

    #[test]
    fn heartbeat_ticks_per_attempt_and_noop_stays_silent() {
        let noop = Heartbeat::noop();
        noop.tick();
        assert_eq!(noop.beats(), 0);

        let live = Heartbeat::live();
        let clone = live.clone();
        clone.tick();
        assert_eq!(live.beats(), 1, "clones share one counter");

        // run_job_beating ticks once per attempt, even when the runner
        // itself never cooperates.
        let beacon = Heartbeat::live();
        let runner = |j: &Job, ctx: &RunCtx| {
            if ctx.attempt < 3 {
                panic!("transient");
            }
            SpecRunner.run(j, ctx)
        };
        let out = run_job_beating(0, &job("exchange2", 3), &runner, Duration::ZERO, 0, &beacon);
        assert!(out.result.is_ok());
        assert_eq!(out.metrics.assignments, 1);
        assert_eq!(beacon.beats(), 3, "one beat per attempt");
    }

    #[test]
    fn queue_wait_grows_monotonically_on_the_serial_path() {
        let jobs: Vec<Job> = ["exchange2", "mcf"]
            .into_iter()
            .map(|n| job(n, 1))
            .collect();
        let mut waits = Vec::new();
        execute(&jobs, &SpecRunner, 1, |out| {
            assert_eq!(out.metrics.worker, 0);
            waits.push(out.metrics.queue_wait);
        });
        assert_eq!(waits.len(), 2);
        // Job 1 waits at least as long as job 0 took to run.
        assert!(waits[1] >= waits[0], "{waits:?}");
    }

    #[test]
    fn worker_count_is_capped_by_job_count_and_floored_at_one() {
        let jobs = vec![job("exchange2", 1)];
        assert_eq!(execute(&jobs, &SpecRunner, 0, |_| {}).workers, 1);
        assert_eq!(execute(&jobs, &SpecRunner, 16, |_| {}).workers, 1);
        assert_eq!(execute(&[], &SpecRunner, 16, |_| {}).workers, 1);
    }

    #[test]
    fn panics_are_isolated_per_attempt_and_retried_reseeded() {
        let jobs = vec![job("exchange2", 3)];
        let tries = AtomicU32::new(0);
        let runner = |j: &Job, ctx: &RunCtx| {
            tries.fetch_add(1, Ordering::SeqCst);
            assert_eq!(ctx.seed, j.seed + u64::from(ctx.attempt) - 1);
            if ctx.attempt < 3 {
                panic!("transient fault on attempt {}", ctx.attempt);
            }
            SpecRunner.run(j, ctx)
        };
        let mut outcomes = Vec::new();
        execute(&jobs, &runner, 4, |out| outcomes.push(out));
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].attempts, 3);
        assert!(outcomes[0].result.is_ok());
        assert!(outcomes[0].metrics.cycles > 0);
        assert!(outcomes[0].metrics.ipc > 0.0);
    }

    #[test]
    fn exhausted_attempts_surface_the_last_error() {
        let jobs = vec![job("exchange2", 2)];
        let runner = |_: &Job, ctx: &RunCtx| -> Result<ProfiledRun, RunError> {
            panic!("always dies (attempt {})", ctx.attempt)
        };
        let mut outcomes = Vec::new();
        execute(&jobs, &runner, 2, |out| outcomes.push(out));
        assert_eq!(outcomes[0].attempts, 2);
        match &outcomes[0].result {
            Err(RunError::Panicked { bench, message }) => {
                assert_eq!(bench, "exchange2");
                assert!(message.contains("attempt 2"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(outcomes[0].metrics.cycles, 0);
    }

    #[test]
    fn parallel_results_match_serial_results_exactly() {
        let jobs: Vec<Job> = ["exchange2", "mcf", "lbm"]
            .into_iter()
            .map(|n| job(n, 1))
            .collect();
        let collect = |workers| {
            let mut runs = Vec::new();
            execute(&jobs, &SpecRunner, workers, |out| {
                runs.push(out.result.expect("completes"));
            });
            runs
        };
        let serial = collect(1);
        let parallel = collect(4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.summary, p.summary);
            assert_eq!(s.stats, p.stats);
            for (id, samples) in &s.bank.samples {
                assert_eq!(Some(samples.as_slice()), p.bank.try_samples_of(*id));
            }
        }
    }
}
