//! Host-throughput benchmark harness behind the `hostbench` binary.
//!
//! The paper's methodology runs every benchmark *to completion* under many
//! profiler configurations (TIP §5, Table 1), so the wall-clock cost of a
//! campaign is `Core::step` × ~10⁷ cycles × jobs — host throughput is the
//! binding constraint on how many scenarios we can cover. This module
//! measures that throughput reproducibly: a fixed benchmark × mode matrix,
//! each cell reporting simulated cycles per host-second (and MB/s for the
//! tracing mode), with aggregates emitted as `BENCH_PR4.json` so future PRs
//! extend a perf trajectory instead of guessing.
//!
//! Four modes isolate where host time goes:
//!
//! * `raw`    — the bare simulator (`()` sink): the floor everything else
//!   pays on top of.
//! * `bank`   — the fig08-style profiler matrix (Software, Dispatch, LCI,
//!   NCI, TIP-ILP, TIP) plus the Oracle, all on one sampling schedule.
//!   This is the number campaigns are bound by, and the one the PR-4
//!   acceptance criterion compares against its baseline.
//! * `stream` — `bank` plus a delta flush every
//!   [`DEFAULT_STREAM_CYCLES`] simulated cycles, exactly as a streaming
//!   campaign pays it: the slice loop, [`ProfilerBank::flush_deltas`],
//!   and the discarded [`tip_core::BankDeltas`]. The `bank`→`stream` gap
//!   is the delta-flush overhead the PR-8 acceptance criterion bounds
//!   below 3%.
//! * `trace`  — a framed [`TraceWriter`] into a byte-counting null sink:
//!   encode + CRC throughput in MB/s.
//!
//! The same throughput arithmetic is reused by the campaign layer to report
//! `--jobs N` scaling efficiency in `metrics.txt` (see [`ScalingReport`]).

use std::fmt::Write as _;
use std::io;
use std::time::Instant;

use crate::run::{DEFAULT_INTERVAL, DEFAULT_STREAM_CYCLES};
use crate::table::Table;
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_ooo::{Core, CoreConfig, RunExit};
use tip_trace::TraceWriter;
use tip_workloads::{benchmark, SuiteScale};

/// The fig08-style profiler matrix: the six profilers of the paper's
/// function-level error figure, run side by side on one schedule.
pub const FIG08_PROFILERS: [ProfilerId; 6] = [
    ProfilerId::Software,
    ProfilerId::Dispatch,
    ProfilerId::Lci,
    ProfilerId::Nci,
    ProfilerId::TipIlp,
    ProfilerId::Tip,
];

/// Benchmarks measured by the full matrix: two per workload class
/// (Compute / Flush / Stall), so the aggregate is not dominated by one
/// commit-stage behaviour.
pub const FULL_MATRIX: [&str; 6] = [
    "exchange2",
    "namd",
    "imagick",
    "perlbench",
    "mcf",
    "xalancbmk",
];

/// Benchmarks measured by `--quick`: one per workload class.
pub const QUICK_MATRIX: [&str; 3] = ["exchange2", "imagick", "mcf"];

/// Seed used for every measurement run (throughput must not depend on it,
/// but determinism keeps the simulated work identical across builds).
pub const HOSTBENCH_SEED: u64 = 42;

/// How a measurement cell exercised the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Bare simulator, `()` sink.
    Raw,
    /// Full fig08 profiler bank + Oracle.
    Bank,
    /// `Bank` plus a delta flush every [`DEFAULT_STREAM_CYCLES`] cycles.
    Stream,
    /// Framed trace encoding into a null writer.
    Trace,
}

impl Mode {
    /// Stable lower-case name used in tables and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mode::Raw => "raw",
            Mode::Bank => "bank",
            Mode::Stream => "stream",
            Mode::Trace => "trace",
        }
    }
}

/// One measured cell of the matrix.
#[derive(Debug, Clone)]
pub struct HostBenchRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Which mode was measured.
    pub mode: Mode,
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Best wall-clock seconds over the configured trials.
    pub wall_s: f64,
    /// Encoded trace payload bytes (0 outside `trace` mode).
    pub trace_bytes: u64,
    /// Delta flushes taken (0 outside `stream` mode).
    pub flushes: u64,
}

impl HostBenchRow {
    /// Simulated megacycles per host second.
    #[must_use]
    pub fn mcycles_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cycles as f64 / self.wall_s / 1e6
        } else {
            0.0
        }
    }

    /// Trace megabytes per host second (0 outside `trace` mode).
    #[must_use]
    pub fn mb_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.trace_bytes as f64 / self.wall_s / 1e6
        } else {
            0.0
        }
    }
}

/// Options for one hostbench invocation.
#[derive(Debug, Clone)]
pub struct HostBenchOptions {
    /// Use the reduced matrix and a single trial (CI-friendly).
    pub quick: bool,
    /// Suite scale to generate benchmarks at.
    pub scale: SuiteScale,
    /// Cap on simulated cycles per cell (a cell that hits the cap still
    /// measures throughput; it just bounds host time).
    pub budget: u64,
    /// Timed trials per cell; the best (highest-throughput) trial wins.
    pub trials: u32,
}

impl HostBenchOptions {
    /// The full-matrix defaults.
    #[must_use]
    pub fn full() -> Self {
        HostBenchOptions {
            quick: false,
            scale: SuiteScale::Small,
            budget: 8_000_000,
            trials: 2,
        }
    }

    /// The `--quick` defaults: one trial, one benchmark per class, a
    /// tighter cycle cap.
    #[must_use]
    pub fn quick() -> Self {
        HostBenchOptions {
            quick: true,
            scale: SuiteScale::Small,
            budget: 1_500_000,
            trials: 1,
        }
    }

    fn matrix(&self) -> &'static [&'static str] {
        if self.quick {
            &QUICK_MATRIX
        } else {
            &FULL_MATRIX
        }
    }
}

/// Aggregate throughput over the matrix (total cycles / total host time,
/// per mode — the "campaign-shaped" average rather than a mean of rates).
#[derive(Debug, Clone, Copy)]
pub struct Aggregate {
    /// `raw` mode, Mcycles/s.
    pub raw_mcycles_per_s: f64,
    /// `bank` mode, Mcycles/s — the headline number.
    pub bank_mcycles_per_s: f64,
    /// `stream` mode, Mcycles/s — `bank` plus periodic delta flushes.
    /// `0.0` when read back from a pre-v2 report without the mode.
    pub stream_mcycles_per_s: f64,
    /// `trace` mode, Mcycles/s.
    pub trace_mcycles_per_s: f64,
    /// `trace` mode, MB/s of encoded payload.
    pub trace_mb_per_s: f64,
}

impl Aggregate {
    /// Fractional throughput lost to streaming delta flushes:
    /// `1 - stream/bank`, negative when `stream` measured faster (noise).
    /// `0.0` when either mode is missing. The PR-8 acceptance criterion
    /// requires this below 0.03.
    #[must_use]
    pub fn stream_overhead(&self) -> f64 {
        if self.bank_mcycles_per_s > 0.0 && self.stream_mcycles_per_s > 0.0 {
            1.0 - self.stream_mcycles_per_s / self.bank_mcycles_per_s
        } else {
            0.0
        }
    }
}

/// A completed hostbench report.
#[derive(Debug, Clone)]
pub struct HostBenchReport {
    /// The options that produced it.
    pub options: HostBenchOptions,
    /// Every measured cell, in matrix × mode order.
    pub rows: Vec<HostBenchRow>,
}

impl HostBenchReport {
    /// Totals a mode's cells into (cycles, wall seconds, trace bytes).
    fn totals(&self, mode: Mode) -> (u64, f64, u64) {
        let mut cycles = 0;
        let mut wall = 0.0;
        let mut bytes = 0;
        for r in self.rows.iter().filter(|r| r.mode == mode) {
            cycles += r.cycles;
            wall += r.wall_s;
            bytes += r.trace_bytes;
        }
        (cycles, wall, bytes)
    }

    /// Aggregate throughput per mode.
    #[must_use]
    pub fn aggregate(&self) -> Aggregate {
        let rate = |cycles: u64, wall: f64| {
            if wall > 0.0 {
                cycles as f64 / wall / 1e6
            } else {
                0.0
            }
        };
        let (rc, rw, _) = self.totals(Mode::Raw);
        let (bc, bw, _) = self.totals(Mode::Bank);
        let (sc, sw, _) = self.totals(Mode::Stream);
        let (tc, tw, tb) = self.totals(Mode::Trace);
        Aggregate {
            raw_mcycles_per_s: rate(rc, rw),
            bank_mcycles_per_s: rate(bc, bw),
            stream_mcycles_per_s: rate(sc, sw),
            trace_mcycles_per_s: rate(tc, tw),
            trace_mb_per_s: if tw > 0.0 { tb as f64 / tw / 1e6 } else { 0.0 },
        }
    }

    /// Renders the human-readable throughput table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut t = Table::new(["benchmark", "mode", "cycles", "wall_s", "Mcycles/s", "MB/s"]);
        for r in &self.rows {
            t.row([
                r.bench.to_owned(),
                r.mode.name().to_owned(),
                r.cycles.to_string(),
                format!("{:.3}", r.wall_s),
                format!("{:.2}", r.mcycles_per_s()),
                if r.mode == Mode::Trace {
                    format!("{:.2}", r.mb_per_s())
                } else {
                    String::new()
                },
            ]);
        }
        let a = self.aggregate();
        t.row([
            "[aggregate]".to_owned(),
            "raw".to_owned(),
            String::new(),
            String::new(),
            format!("{:.2}", a.raw_mcycles_per_s),
            String::new(),
        ]);
        t.row([
            "[aggregate]".to_owned(),
            "bank".to_owned(),
            String::new(),
            String::new(),
            format!("{:.2}", a.bank_mcycles_per_s),
            String::new(),
        ]);
        t.row([
            "[aggregate]".to_owned(),
            "stream".to_owned(),
            String::new(),
            String::new(),
            format!("{:.2}", a.stream_mcycles_per_s),
            String::new(),
        ]);
        t.row([
            "[aggregate]".to_owned(),
            "trace".to_owned(),
            String::new(),
            String::new(),
            format!("{:.2}", a.trace_mcycles_per_s),
            format!("{:.2}", a.trace_mb_per_s),
        ]);
        t.render()
    }

    /// Serializes the report (plus an optional baseline aggregate) as a
    /// perf-trajectory point (`BENCH_PR4.json`, `BENCH_PR8.json`, ...).
    ///
    /// The file is plain JSON written by hand (the workspace deliberately
    /// has no JSON dependency); [`extract_number`] can read the aggregate
    /// numbers back out of a previous file for baseline comparison.
    #[must_use]
    pub fn to_json(&self, baseline: Option<&Aggregate>) -> String {
        let a = self.aggregate();
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"tip-hostbench-v2\",\n");
        let _ = writeln!(s, "  \"quick\": {},", self.options.quick);
        let _ = writeln!(s, "  \"scale\": \"{:?}\",", self.options.scale);
        let _ = writeln!(s, "  \"budget_cycles\": {},", self.options.budget);
        let _ = writeln!(s, "  \"trials\": {},", self.options.trials);
        let _ = writeln!(s, "  \"sampler_interval\": {DEFAULT_INTERVAL},");
        s.push_str("  \"profilers\": [");
        for (i, p) in FIG08_PROFILERS.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", p.label());
        }
        s.push_str("],\n");
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"bench\": \"{}\", \"mode\": \"{}\", \"cycles\": {}, \"instructions\": {}, \"wall_s\": {:.6}, \"mcycles_per_s\": {:.3}, \"trace_mb_per_s\": {:.3}, \"flushes\": {}}}",
                r.bench,
                r.mode.name(),
                r.cycles,
                r.instructions,
                r.wall_s,
                r.mcycles_per_s(),
                r.mb_per_s(),
                r.flushes,
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        let _ = write!(
            s,
            "  \"aggregate\": {{\"raw_mcycles_per_s\": {:.3}, \"bank_mcycles_per_s\": {:.3}, \"stream_mcycles_per_s\": {:.3}, \"trace_mcycles_per_s\": {:.3}, \"trace_mb_per_s\": {:.3}, \"stream_overhead\": {:.4}}}",
            a.raw_mcycles_per_s,
            a.bank_mcycles_per_s,
            a.stream_mcycles_per_s,
            a.trace_mcycles_per_s,
            a.trace_mb_per_s,
            a.stream_overhead(),
        );
        if let Some(b) = baseline {
            s.push_str(",\n");
            let _ = writeln!(
                s,
                "  \"baseline\": {{\"raw_mcycles_per_s\": {:.3}, \"bank_mcycles_per_s\": {:.3}, \"stream_mcycles_per_s\": {:.3}, \"trace_mcycles_per_s\": {:.3}, \"trace_mb_per_s\": {:.3}}},",
                b.raw_mcycles_per_s,
                b.bank_mcycles_per_s,
                b.stream_mcycles_per_s,
                b.trace_mcycles_per_s,
                b.trace_mb_per_s
            );
            let ratio = |new: f64, old: f64| if old > 0.0 { new / old } else { 0.0 };
            let _ = write!(
                s,
                "  \"speedup\": {{\"raw\": {:.3}, \"bank\": {:.3}, \"stream\": {:.3}, \"trace\": {:.3}, \"trace_mb\": {:.3}}}",
                ratio(a.raw_mcycles_per_s, b.raw_mcycles_per_s),
                ratio(a.bank_mcycles_per_s, b.bank_mcycles_per_s),
                ratio(a.stream_mcycles_per_s, b.stream_mcycles_per_s),
                ratio(a.trace_mcycles_per_s, b.trace_mcycles_per_s),
                ratio(a.trace_mb_per_s, b.trace_mb_per_s),
            );
        }
        s.push_str("\n}\n");
        s
    }
}

/// Measures one cell: `bench` under `mode`, best of `trials`.
fn measure_cell(
    name: &'static str,
    mode: Mode,
    scale: SuiteScale,
    budget: u64,
    trials: u32,
) -> HostBenchRow {
    let b = benchmark(name, scale);
    let mut best: Option<HostBenchRow> = None;
    for _ in 0..trials.max(1) {
        let mut core = Core::new(&b.program, CoreConfig::default(), HOSTBENCH_SEED);
        let row = match mode {
            Mode::Raw => {
                let mut sink = ();
                let start = Instant::now();
                let summary = core.run(&mut sink, budget);
                let wall_s = start.elapsed().as_secs_f64();
                HostBenchRow {
                    bench: name,
                    mode,
                    cycles: summary.cycles,
                    instructions: summary.instructions,
                    wall_s,
                    trace_bytes: 0,
                    flushes: 0,
                }
            }
            Mode::Bank => {
                let mut bank = ProfilerBank::new(
                    &b.program,
                    SamplerConfig::periodic(DEFAULT_INTERVAL),
                    &FIG08_PROFILERS,
                );
                let start = Instant::now();
                let summary = core.run(&mut bank, budget);
                let wall_s = start.elapsed().as_secs_f64();
                // Finishing the bank is not timed: campaigns pay it once per
                // run, not per cycle.
                let _ = bank.finish();
                HostBenchRow {
                    bench: name,
                    mode,
                    cycles: summary.cycles,
                    instructions: summary.instructions,
                    wall_s,
                    trace_bytes: 0,
                    flushes: 0,
                }
            }
            Mode::Stream => {
                // The streaming campaign path, timed end to end: the sliced
                // `Core::run` loop plus a delta flush per slice boundary,
                // exactly as `run_profiled_streaming` pays it. The deltas go
                // to a black box — the consumer side (wire, aggregate) runs
                // on other threads in a real campaign and is measured by the
                // serve layer, not here.
                let mut bank = ProfilerBank::new(
                    &b.program,
                    SamplerConfig::periodic(DEFAULT_INTERVAL),
                    &FIG08_PROFILERS,
                );
                let map = b.program.symbol_map(Granularity::Function);
                let mut flushes = 0u64;
                let start = Instant::now();
                let summary = loop {
                    let stop = core
                        .stats()
                        .cycles
                        .saturating_add(DEFAULT_STREAM_CYCLES)
                        .min(budget);
                    let summary = core.run(&mut bank, stop);
                    std::hint::black_box(bank.flush_deltas(&map));
                    flushes += 1;
                    match summary.exit {
                        RunExit::CycleLimit if stop < budget => {}
                        _ => break summary,
                    }
                };
                let wall_s = start.elapsed().as_secs_f64();
                let _ = bank.finish();
                HostBenchRow {
                    bench: name,
                    mode,
                    cycles: summary.cycles,
                    instructions: summary.instructions,
                    wall_s,
                    trace_bytes: 0,
                    flushes,
                }
            }
            Mode::Trace => {
                let mut writer = TraceWriter::new(io::sink());
                let start = Instant::now();
                let summary = core.run(&mut writer, budget);
                writer.flush().expect("null sink cannot fail");
                let wall_s = start.elapsed().as_secs_f64();
                HostBenchRow {
                    bench: name,
                    mode,
                    cycles: summary.cycles,
                    instructions: summary.instructions,
                    wall_s,
                    trace_bytes: writer.bytes(),
                    flushes: 0,
                }
            }
        };
        let better = match &best {
            None => true,
            Some(prev) => row.mcycles_per_s() > prev.mcycles_per_s(),
        };
        if better {
            best = Some(row);
        }
    }
    best.expect("at least one trial ran")
}

/// Runs the configured matrix and returns the report.
///
/// Cells run serially on purpose: throughput numbers from co-scheduled
/// cells would measure host contention, not the simulator.
#[must_use]
pub fn run_hostbench(options: &HostBenchOptions) -> HostBenchReport {
    let mut rows = Vec::new();
    for &name in options.matrix() {
        for mode in [Mode::Raw, Mode::Bank, Mode::Stream, Mode::Trace] {
            rows.push(measure_cell(
                name,
                mode,
                options.scale,
                options.budget,
                options.trials,
            ));
        }
    }
    HostBenchReport {
        options: options.clone(),
        rows,
    }
}

/// Pulls `"key": <number>` out of a hostbench JSON file.
///
/// This is not a JSON parser — it only needs to read back files produced by
/// [`HostBenchReport::to_json`], whose keys are unique per aggregate object.
/// The *first* occurrence of the key wins, which for our layout is the
/// current run's aggregate (the baseline block repeats the key names but
/// appears later).
#[must_use]
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads the per-mode aggregate back out of a previously written report.
#[must_use]
pub fn read_aggregate(json: &str) -> Option<Aggregate> {
    Some(Aggregate {
        raw_mcycles_per_s: extract_number(json, "raw_mcycles_per_s")?,
        bank_mcycles_per_s: extract_number(json, "bank_mcycles_per_s")?,
        // Absent from pre-v2 reports (BENCH_PR4.json): 0.0, not a refusal,
        // so old baselines keep working.
        stream_mcycles_per_s: extract_number(json, "stream_mcycles_per_s").unwrap_or(0.0),
        trace_mcycles_per_s: extract_number(json, "trace_mcycles_per_s")?,
        trace_mb_per_s: extract_number(json, "trace_mb_per_s")?,
    })
}

/// Throughput and scaling figures for a campaign run, derived from the same
/// arithmetic hostbench uses — so `metrics.txt` and `BENCH_PR4.json` speak
/// the same units (cycles per host-second).
#[derive(Debug, Clone, Copy)]
pub struct ScalingReport {
    /// Total simulated cycles across all completed jobs.
    pub total_cycles: u64,
    /// Aggregate simulated cycles per wall-clock second.
    pub cycles_per_s: f64,
    /// Per-worker simulated cycles per second of summed job CPU time —
    /// the single-worker throughput the parallel run achieved.
    pub per_worker_cycles_per_s: f64,
    /// Parallel efficiency: speedup / workers, in `[0, 1]` for an ideal
    /// scaler (can exceed 1 with cache effects).
    pub efficiency: f64,
    /// Mean per-job queue wait in milliseconds — how much of the wall/cpu
    /// gap is queueing rather than compute. `0.0` when the caller has no
    /// per-job waits (e.g. hostbench's single-job cells).
    pub mean_queue_wait_ms: f64,
}

impl ScalingReport {
    /// Builds the report from campaign totals.
    ///
    /// `wall_ms` is the end-to-end campaign wall time, `cpu_ms` the sum of
    /// per-job wall times (the "serial equivalent"), `workers` the worker
    /// thread count.
    #[must_use]
    pub fn new(total_cycles: u64, wall_ms: u64, cpu_ms: u64, workers: usize) -> Self {
        let per_s = |cycles: u64, ms: u64| {
            if ms > 0 {
                cycles as f64 / (ms as f64 / 1e3)
            } else {
                0.0
            }
        };
        let cycles_per_s = per_s(total_cycles, wall_ms);
        let per_worker = per_s(total_cycles, cpu_ms);
        let speedup = if wall_ms > 0 {
            cpu_ms as f64 / wall_ms as f64
        } else {
            0.0
        };
        let efficiency = if workers > 0 {
            speedup / workers as f64
        } else {
            0.0
        };
        ScalingReport {
            total_cycles,
            cycles_per_s,
            per_worker_cycles_per_s: per_worker,
            efficiency,
            mean_queue_wait_ms: 0.0,
        }
    }

    /// Attaches the mean per-job queue wait (milliseconds) measured by the
    /// executor, closing the wall-vs-cpu gap this report used to leave
    /// unexplained.
    #[must_use]
    pub fn with_queue_wait(mut self, mean_queue_wait_ms: f64) -> Self {
        self.mean_queue_wait_ms = mean_queue_wait_ms;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_measures_all_modes() {
        let opts = HostBenchOptions {
            quick: true,
            scale: SuiteScale::Test,
            budget: 20_000,
            trials: 1,
        };
        let report = run_hostbench(&opts);
        assert_eq!(report.rows.len(), QUICK_MATRIX.len() * 4);
        for r in &report.rows {
            assert!(
                r.cycles > 0,
                "{}:{} simulated nothing",
                r.bench,
                r.mode.name()
            );
            assert!(r.wall_s > 0.0);
            if r.mode == Mode::Trace {
                assert!(r.trace_bytes > 0, "trace mode must encode bytes");
            }
            if r.mode == Mode::Stream {
                assert!(r.flushes >= 1, "stream mode must flush at least once");
            }
        }
        let a = report.aggregate();
        assert!(a.bank_mcycles_per_s > 0.0);
        assert!(a.stream_mcycles_per_s > 0.0);
        assert!(a.trace_mb_per_s > 0.0);
        // Streaming must not change the simulation itself: the sliced run
        // resumes bit-exactly, so each bench simulates the same cycle and
        // instruction counts in `bank` and `stream` mode. (The wall-clock
        // overhead bound is asserted over the committed BENCH_PR8.json, not
        // here — CI hosts are too noisy for a timing gate in a unit test.)
        for name in QUICK_MATRIX {
            let of = |mode: Mode| {
                report
                    .rows
                    .iter()
                    .find(|r| r.bench == name && r.mode == mode)
                    .map(|r| (r.cycles, r.instructions))
                    .expect("cell measured")
            };
            assert_eq!(
                of(Mode::Bank),
                of(Mode::Stream),
                "{name}: sliced run drifted"
            );
        }
    }

    #[test]
    fn json_round_trips_aggregate_and_speedup() {
        let opts = HostBenchOptions {
            quick: true,
            scale: SuiteScale::Test,
            budget: 5_000,
            trials: 1,
        };
        let report = run_hostbench(&opts);
        let json = report.to_json(None);
        let back = read_aggregate(&json).expect("aggregate is readable back");
        let a = report.aggregate();
        assert!((back.bank_mcycles_per_s - a.bank_mcycles_per_s).abs() < 1e-3);
        // With itself as the baseline, every speedup is 1.0.
        let with_base = report.to_json(Some(&back));
        assert!(read_aggregate(&with_base).is_some());
        let speedup = extract_number(&with_base, "bank").expect("speedup block present");
        assert!(
            (speedup - 1.0).abs() < 0.01,
            "self-baseline speedup ~1, got {speedup}"
        );
    }

    #[test]
    fn scaling_report_matches_hand_math() {
        // 10 Mcycles in 2 s wall over 4 workers that each burned 2 s of CPU.
        let r = ScalingReport::new(10_000_000, 2_000, 8_000, 4);
        assert!((r.cycles_per_s - 5_000_000.0).abs() < 1.0);
        assert!((r.per_worker_cycles_per_s - 1_250_000.0).abs() < 1.0);
        assert!((r.efficiency - 1.0).abs() < 1e-9, "ideal scaling");
        assert_eq!(r.mean_queue_wait_ms, 0.0);
        assert_eq!(r.with_queue_wait(12.5).mean_queue_wait_ms, 12.5);
        let degenerate = ScalingReport::new(0, 0, 0, 0);
        assert_eq!(degenerate.cycles_per_s, 0.0);
        assert_eq!(degenerate.efficiency, 0.0);
    }
}
