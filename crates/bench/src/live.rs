//! Live in-memory aggregation of streaming profile deltas.
//!
//! Runners flush [`tip_core::BankDeltas`] at slice boundaries (see
//! [`crate::run::run_profiled_streaming`] and the checkpointed variant);
//! each flush is wrapped in a [`DeltaEvent`] and pushed through a
//! [`DeltaSink`] into a shared [`LiveAggregate`]. The aggregate merges the
//! integer-unit deltas per benchmark and per profiler, so at any moment a
//! [`LiveView`] snapshot answers "where is the time going *so far*" — for a
//! campaign still in flight, across any worker count.
//!
//! Streaming is **pure observation**: the sink sees copies of quantized
//! increments, never the samples themselves, so the final artifacts
//! (`journal.txt`, `*.result`, profiles) are byte-identical with streaming
//! on or off. Correctness of the merge rests on the telescoping property of
//! [`tip_core::ProfileDelta`]: the sum of a run's slice deltas equals its
//! whole-run quantized profile exactly, regardless of merge order.
//!
//! Crash/retry semantics: a bank's flush sequence restarts at 1 on a fresh
//! attempt or a checkpoint restore, and the first flush after a restore
//! re-reports the full cumulative units. The aggregate therefore treats a
//! non-increasing sequence number, or a changed attempt, as "this run
//! started over" and resets the benchmark's slot — no double counting.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use tip_core::{BankDeltas, ProfilerId, NUM_CATEGORIES, UNITS_PER_CYCLE};
use tip_isa::Granularity;

/// One flush from one run attempt, addressed to the aggregate.
#[derive(Debug, Clone)]
pub struct DeltaEvent {
    /// Benchmark name the deltas belong to.
    pub bench: String,
    /// 1-based attempt number (a retry restarts the accumulators).
    pub attempt: u32,
    /// The bank's per-profiler quantized increments since its last flush.
    pub deltas: BankDeltas,
}

/// A cloneable handle delivering [`DeltaEvent`]s to whoever wants to watch.
///
/// The default ([`DeltaSink::noop`]) is disconnected: emitting costs one
/// branch, so non-streaming paths pay nothing for the plumbing. Clones share
/// the same receiver.
#[derive(Clone, Default)]
pub struct DeltaSink {
    inner: Option<Arc<dyn Fn(DeltaEvent) + Send + Sync>>,
}

impl DeltaSink {
    /// A disconnected sink: events are dropped.
    #[must_use]
    pub fn noop() -> Self {
        DeltaSink::default()
    }

    /// A live sink delivering every event to `f`.
    pub fn new(f: impl Fn(DeltaEvent) + Send + Sync + 'static) -> Self {
        DeltaSink {
            inner: Some(Arc::new(f)),
        }
    }

    /// Whether events go anywhere (runners skip flushing entirely when not).
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Delivers one event (dropped on a disconnected sink).
    pub fn emit(&self, event: DeltaEvent) {
        if let Some(f) = &self.inner {
            f(event);
        }
    }
}

impl fmt::Debug for DeltaSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeltaSink")
            .field("live", &self.is_live())
            .finish()
    }
}

/// Running aggregate for one benchmark.
#[derive(Debug, Clone)]
struct Slot {
    attempt: u32,
    last_seq: u64,
    /// `Some(ok)` once the campaign committed the benchmark's outcome.
    settled: Option<bool>,
    granularity: Granularity,
    num_symbols: u32,
    /// Dense merged units per profiler, `UNITS_PER_CYCLE` units per cycle.
    per_profiler: BTreeMap<ProfilerId, Vec<i64>>,
    oracle: Vec<i64>,
    stack: Vec<i64>,
    cycles: u64,
    flushes: u64,
    /// Per-flush history of `(cycles, per-profiler error vs. the Oracle)`,
    /// recorded after each flush is folded in — the raw material for
    /// error-trajectory queries ("is this profiler converging?").
    trajectory: Vec<(u64, Vec<(ProfilerId, f64)>)>,
}

impl Slot {
    fn fresh(event: &DeltaEvent) -> Self {
        Slot {
            attempt: event.attempt,
            last_seq: 0,
            settled: None,
            granularity: event.deltas.oracle.granularity(),
            num_symbols: event.deltas.oracle.num_symbols(),
            per_profiler: BTreeMap::new(),
            oracle: vec![0; event.deltas.oracle.num_symbols() as usize],
            stack: vec![0; NUM_CATEGORIES],
            cycles: 0,
            flushes: 0,
            trajectory: Vec::new(),
        }
    }

    fn apply(&mut self, event: &DeltaEvent) {
        self.last_seq = event.deltas.seq;
        self.cycles = event.deltas.cycles;
        self.flushes += 1;
        let n = self.num_symbols as usize;
        for (id, delta) in &event.deltas.per_profiler {
            let dense = self.per_profiler.entry(*id).or_insert_with(|| vec![0; n]);
            for &(sym, units) in delta.entries() {
                if let Some(slot) = dense.get_mut(sym as usize) {
                    *slot += units;
                }
            }
        }
        for &(sym, units) in event.deltas.oracle.entries() {
            if let Some(slot) = self.oracle.get_mut(sym as usize) {
                *slot += units;
            }
        }
        for (acc, &d) in self.stack.iter_mut().zip(&event.deltas.stack) {
            *acc += d;
        }
        let errors: Vec<(ProfilerId, f64)> = self
            .per_profiler
            .iter()
            .filter_map(|(id, units)| half_l1(units, &self.oracle).map(|e| (*id, e)))
            .collect();
        self.trajectory.push((self.cycles, errors));
    }
}

/// Half the L1 distance between two normalized positive unit vectors — the
/// paper's profile-error metric. `None` until both sides have positive
/// totals.
fn half_l1(units: &[i64], oracle: &[i64]) -> Option<f64> {
    let pt: i64 = units.iter().filter(|&&u| u > 0).sum();
    let ot: i64 = oracle.iter().filter(|&&u| u > 0).sum();
    if pt <= 0 || ot <= 0 {
        return None;
    }
    let l1: f64 = units
        .iter()
        .zip(oracle)
        .map(|(&p, &o)| (p.max(0) as f64 / pt as f64 - o.max(0) as f64 / ot as f64).abs())
        .sum();
    Some(l1 / 2.0)
}

/// Thread-safe, campaign-wide streaming aggregate.
///
/// Workers (local threads, engine workers, fleet agents via the
/// coordinator) push [`DeltaEvent`]s concurrently; readers take cheap
/// [`LiveView`] snapshots. Both sides go through one mutex — events are a
/// few dozen entries each, so contention is negligible next to simulation.
#[derive(Debug, Default)]
pub struct LiveAggregate {
    inner: Mutex<BTreeMap<String, Slot>>,
}

impl LiveAggregate {
    /// An empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        LiveAggregate::default()
    }

    /// Folds one flush in, resetting the benchmark's slot when the event
    /// signals a restarted run (new attempt, or a sequence that did not
    /// advance — both mean "the first flush re-reported everything").
    pub fn ingest(&self, event: &DeltaEvent) {
        let mut inner = self.inner.lock().expect("aggregate lock");
        let slot = inner
            .entry(event.bench.clone())
            .or_insert_with(|| Slot::fresh(event));
        if event.attempt != slot.attempt || event.deltas.seq <= slot.last_seq {
            *slot = Slot::fresh(event);
        }
        slot.apply(event);
    }

    /// A sink feeding this aggregate; hand it to the executor or a runner.
    #[must_use]
    pub fn sink(self: &Arc<Self>) -> DeltaSink {
        let agg = Arc::clone(self);
        DeltaSink::new(move |event| agg.ingest(&event))
    }

    /// Records the committed outcome of a benchmark (shown by live views to
    /// distinguish in-flight from settled work). A benchmark that failed
    /// without ever flushing gets no slot and stays invisible — the failure
    /// report owns that story.
    pub fn mark_settled(&self, bench: &str, ok: bool) {
        let mut inner = self.inner.lock().expect("aggregate lock");
        if let Some(slot) = inner.get_mut(bench) {
            slot.settled = Some(ok);
        }
    }

    /// A point-in-time snapshot of everything aggregated so far.
    #[must_use]
    pub fn view(&self) -> LiveView {
        let inner = self.inner.lock().expect("aggregate lock");
        LiveView {
            benches: inner
                .iter()
                .map(|(name, slot)| BenchView {
                    bench: name.clone(),
                    attempt: slot.attempt,
                    settled: slot.settled,
                    flushes: slot.flushes,
                    cycles: slot.cycles,
                    granularity: slot.granularity,
                    num_symbols: slot.num_symbols,
                    per_profiler: slot
                        .per_profiler
                        .iter()
                        .map(|(id, units)| (*id, units.clone()))
                        .collect(),
                    oracle: slot.oracle.clone(),
                    stack: slot.stack.clone(),
                    trajectory: slot.trajectory.clone(),
                })
                .collect(),
        }
    }
}

/// Immutable snapshot of a [`LiveAggregate`] (benches in name order).
#[derive(Debug, Clone, Default)]
pub struct LiveView {
    /// Per-benchmark aggregates, sorted by benchmark name.
    pub benches: Vec<BenchView>,
}

impl LiveView {
    /// The snapshot for one benchmark, if it has flushed anything yet.
    #[must_use]
    pub fn bench(&self, name: &str) -> Option<&BenchView> {
        self.benches.iter().find(|b| b.bench == name)
    }

    /// Total simulated cycles observed across all benchmarks so far.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.benches.iter().map(|b| b.cycles).sum()
    }

    /// Total flushes folded in across all benchmarks.
    #[must_use]
    pub fn total_flushes(&self) -> u64 {
        self.benches.iter().map(|b| b.flushes).sum()
    }

    /// Campaign-wide cycle stack: the per-category unit sums over every
    /// benchmark (same quantization as the per-bench stacks).
    #[must_use]
    pub fn stack(&self) -> Vec<i64> {
        let mut total = vec![0i64; NUM_CATEGORIES];
        for b in &self.benches {
            for (acc, &u) in total.iter_mut().zip(&b.stack) {
                *acc += u;
            }
        }
        total
    }
}

/// One benchmark's aggregated streaming state.
#[derive(Debug, Clone)]
pub struct BenchView {
    /// Benchmark name.
    pub bench: String,
    /// Attempt the units belong to.
    pub attempt: u32,
    /// `Some(ok)` once the campaign committed the benchmark.
    pub settled: Option<bool>,
    /// Flushes folded in so far.
    pub flushes: u64,
    /// Simulated cycles the latest flush had observed.
    pub cycles: u64,
    /// Symbol granularity of the unit vectors.
    pub granularity: Granularity,
    /// Length of the unit vectors.
    pub num_symbols: u32,
    /// Merged units per profiler (dense, `UNITS_PER_CYCLE` per cycle).
    pub per_profiler: Vec<(ProfilerId, Vec<i64>)>,
    /// Merged Oracle units.
    pub oracle: Vec<i64>,
    /// Merged cycle-stack units, indexed by [`tip_core::CycleCategory`].
    pub stack: Vec<i64>,
    /// Per-flush `(cycles, per-profiler error vs. the Oracle)` history.
    pub trajectory: Vec<(u64, Vec<(ProfilerId, f64)>)>,
}

impl BenchView {
    /// The merged units for `profiler` (`None` = the Oracle).
    #[must_use]
    pub fn units(&self, profiler: Option<ProfilerId>) -> Option<&[i64]> {
        match profiler {
            None => Some(&self.oracle),
            Some(id) => self
                .per_profiler
                .iter()
                .find(|(p, _)| *p == id)
                .map(|(_, u)| u.as_slice()),
        }
    }

    /// The top `n` symbols by aggregated units for `profiler` (`None` = the
    /// Oracle): `(symbol, units, share)` with a deterministic order — units
    /// descending, then symbol id ascending — matching the tie-break rule
    /// of [`tip_core::Profile::ranked`].
    #[must_use]
    pub fn top_n(&self, profiler: Option<ProfilerId>, n: usize) -> Vec<(u32, i64, f64)> {
        let Some(units) = self.units(profiler) else {
            return Vec::new();
        };
        let total: i64 = units.iter().filter(|&&u| u > 0).sum();
        let mut rows: Vec<(u32, i64)> = units
            .iter()
            .enumerate()
            .filter(|(_, &u)| u > 0)
            .map(|(i, &u)| (i as u32, u))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(n);
        rows.into_iter()
            .map(|(sym, u)| {
                let share = if total > 0 {
                    u as f64 / total as f64
                } else {
                    0.0
                };
                (sym, u, share)
            })
            .collect()
    }

    /// The profiler's current error against the Oracle aggregate: half the
    /// L1 distance between the normalized unit vectors — the paper's metric
    /// computed over the streamed state. `None` until both sides have
    /// positive totals.
    #[must_use]
    pub fn error_vs_oracle(&self, profiler: ProfilerId) -> Option<f64> {
        half_l1(self.units(Some(profiler))?, &self.oracle)
    }

    /// The profiler's error-vs-Oracle trajectory over the flush history:
    /// `(cycles, error)` pairs in flush order, skipping flushes where either
    /// side had no positive units yet.
    #[must_use]
    pub fn error_trajectory(&self, profiler: ProfilerId) -> Vec<(u64, f64)> {
        self.trajectory
            .iter()
            .filter_map(|(cycles, errors)| {
                errors
                    .iter()
                    .find(|(p, _)| *p == profiler)
                    .map(|(_, e)| (*cycles, *e))
            })
            .collect()
    }

    /// Simulated cycles attributed so far, recovered from the stack units.
    #[must_use]
    pub fn attributed_cycles(&self) -> f64 {
        self.stack.iter().sum::<i64>() as f64 / UNITS_PER_CYCLE as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_core::ProfileDelta;

    fn event(bench: &str, attempt: u32, seq: u64, cycles: u64, units: &[(u32, i64)]) -> DeltaEvent {
        let delta = ProfileDelta::from_entries(Granularity::Function, 8, units.iter().copied());
        DeltaEvent {
            bench: bench.to_owned(),
            attempt,
            deltas: BankDeltas {
                seq,
                per_profiler: vec![(ProfilerId::Tip, delta.clone())],
                oracle: delta,
                stack: vec![seq as i64; NUM_CATEGORIES],
                cycles,
            },
        }
    }

    #[test]
    fn ingest_merges_and_view_ranks_deterministically() {
        let agg = Arc::new(LiveAggregate::new());
        let sink = agg.sink();
        assert!(sink.is_live());
        sink.emit(event("mcf", 1, 1, 100, &[(0, 840), (3, 1_680)]));
        sink.emit(event("mcf", 1, 2, 250, &[(3, -840), (5, 1_680)]));

        let view = agg.view();
        let b = view.bench("mcf").expect("slot exists");
        assert_eq!(b.cycles, 250);
        assert_eq!(b.flushes, 2);
        // 0: 840, 3: 840, 5: 1680 — ties broken by symbol id.
        assert_eq!(
            b.top_n(Some(ProfilerId::Tip), 10),
            vec![(5, 1_680, 0.5), (0, 840, 0.25), (3, 840, 0.25)]
        );
        assert_eq!(b.units(Some(ProfilerId::Nci)), None);
        // Identical distributions → zero error against the Oracle.
        assert!(b.error_vs_oracle(ProfilerId::Tip).expect("both sides live") < 1e-12);
        let traj = b.error_trajectory(ProfilerId::Tip);
        assert_eq!(traj.len(), 2);
        assert_eq!((traj[0].0, traj[1].0), (100, 250));
        assert!(traj.iter().all(|&(_, e)| e < 1e-12));
        assert_eq!(view.total_cycles(), 250);
        assert_eq!(view.stack(), vec![3i64; NUM_CATEGORIES]);
    }

    #[test]
    fn restarted_attempts_and_replayed_sequences_reset_the_slot() {
        let agg = LiveAggregate::new();
        agg.ingest(&event("lbm", 1, 1, 100, &[(1, 840)]));
        agg.ingest(&event("lbm", 1, 2, 200, &[(1, 840)]));
        // A retry (new attempt) starts over — the failed attempt's units go.
        agg.ingest(&event("lbm", 2, 1, 50, &[(2, 840)]));
        let b = agg.view();
        let b = b.bench("lbm").expect("slot");
        assert_eq!(b.attempt, 2);
        assert_eq!(b.top_n(None, 10), vec![(2, 840, 1.0)]);

        // A restored checkpoint restarts seq at 1 and re-reports everything:
        // the stale aggregate must be dropped, not doubled.
        agg.ingest(&event("lbm", 2, 1, 60, &[(2, 1_680)]));
        let view = agg.view();
        let b = view.bench("lbm").expect("slot");
        assert_eq!(b.flushes, 1);
        assert_eq!(b.top_n(None, 10), vec![(2, 1_680, 1.0)]);
    }

    #[test]
    fn settled_marks_show_up_in_views_and_noop_sink_drops() {
        let agg = Arc::new(LiveAggregate::new());
        agg.ingest(&event("gcc", 1, 1, 10, &[(0, 840)]));
        agg.mark_settled("gcc", true);
        agg.mark_settled("never-flushed", false);
        let view = agg.view();
        assert_eq!(view.bench("gcc").expect("slot").settled, Some(true));
        assert!(view.bench("never-flushed").is_none());

        let noop = DeltaSink::noop();
        assert!(!noop.is_live());
        noop.emit(event("gcc", 1, 2, 20, &[(0, 840)]));
        assert_eq!(agg.view().bench("gcc").expect("slot").flushes, 1);
    }
}
