//! Figure 8: function-level profile errors for all six profilers.
//!
//! Usage: `fig08 [test|small|full] [out_dir] [--jobs N] [--checkpoint N]
//! [--resume]` (default: small, all cores). Runs as a fault-tolerant
//! campaign fanned out over `--jobs N` worker threads with a deterministic
//! merge (outputs are byte-identical at any worker count; `metrics.txt`
//! records the per-job timing and the speedup): a benchmark that
//! dies is retried, then skipped with a report, and per-benchmark results
//! land in `out_dir` incrementally via atomic renames. With `--checkpoint N`
//! each benchmark also persists a restorable mid-run snapshot every N
//! cycles; after a crash, re-running with `--resume` skips completed
//! benchmarks and continues the interrupted one from its last checkpoint.

use tip_bench::campaign::{run_suite_campaign, CampaignCli};
use tip_bench::experiments::{class_mean_errors, error_rows, mean_errors};
use tip_bench::table::{pct, Table};
use tip_core::ProfilerId;
use tip_isa::Granularity;
use tip_workloads::WorkloadClass;

fn main() {
    let profilers = [
        ProfilerId::Software,
        ProfilerId::Dispatch,
        ProfilerId::Lci,
        ProfilerId::Nci,
        ProfilerId::TipIlp,
        ProfilerId::Tip,
    ];
    let cli = match CampaignCli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("fig08: {e}");
            eprintln!(
                "usage: fig08 [test|small|full] [out_dir] [--jobs N] [--checkpoint N] [--resume]"
            );
            std::process::exit(2);
        }
    };
    eprintln!("running the suite...");
    let outcome = run_suite_campaign(cli.scale, &cli.config(&profilers));
    eprint!("{}", outcome.summary());
    let (runs, failed) = outcome.into_parts();
    if runs.is_empty() {
        eprintln!("fig08: no benchmark completed");
        std::process::exit(1);
    }
    let rows = error_rows(&runs, Granularity::Function, &profilers);

    let mut header = vec!["benchmark".to_owned(), "class".to_owned()];
    header.extend(profilers.iter().map(|p| p.label().to_owned()));
    let mut t = Table::new(header);
    for r in &rows {
        let mut cells = vec![r.name.to_owned(), r.class.to_string()];
        cells.extend(r.errors.iter().map(|&(_, e)| pct(e)));
        t.row(cells);
    }
    for class in [
        WorkloadClass::Compute,
        WorkloadClass::Flush,
        WorkloadClass::Stall,
    ] {
        let m = class_mean_errors(&rows, class, &profilers);
        let mut cells = vec![format!("[{class} mean]"), String::new()];
        cells.extend(m.iter().map(|&(_, e)| pct(e)));
        t.row(cells);
    }
    let m = mean_errors(&rows, &profilers);
    let mut cells = vec!["[average]".to_owned(), String::new()];
    cells.extend(m.iter().map(|&(_, e)| pct(e)));
    t.row(cells);
    println!(
        "Figure 8: function-level profile error\n(paper avgs: Software 9.1%, Dispatch 5.8%, LCI 1.6%, NCI 0.6%, TIP-ILP 0.4%, TIP 0.3%)\n"
    );
    print!("{}", t.render());
    if !failed.is_empty() {
        println!(
            "\nWARNING: {} benchmark(s) failed and are excluded above.",
            failed.len()
        );
        std::process::exit(2);
    }
}
