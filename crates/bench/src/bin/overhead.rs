//! Section 3.2: TIP overhead analysis — storage, per-sample sizes, data
//! rates, and the runtime-overhead model.

use tip_core::overhead::{
    non_ilp_sample_bytes, oracle_data_rate, runtime_overhead_fraction, sample_data_rate,
    tip_payload_bytes, tip_sample_bytes, tip_storage_bytes,
};

fn main() {
    let w = 4;
    let clock = 3.2;
    let freq = 4_000.0;
    println!("Section 3.2: TIP overhead analysis (4-wide core at 3.2 GHz, 4 kHz sampling)\n");
    println!(
        "TIP storage:            {} B   (paper: 57 B — 9 B OIR + six 8 B CSRs)",
        tip_storage_bytes(w)
    );
    println!(
        "TIP sample size:        {} B   (paper: 88 B)",
        tip_sample_bytes(w)
    );
    println!(
        "non-ILP sample size:    {} B   (paper: 56 B)",
        non_ilp_sample_bytes()
    );
    println!(
        "TIP payload only:       {} B   (paper: 48 B)",
        tip_payload_bytes(w)
    );
    println!();
    println!(
        "TIP data rate:          {:.0} KB/s   (paper: 352 KB/s)",
        sample_data_rate(tip_sample_bytes(w), freq) / 1e3
    );
    println!(
        "non-ILP data rate:      {:.0} KB/s   (paper: 224 KB/s)",
        sample_data_rate(non_ilp_sample_bytes(), freq) / 1e3
    );
    println!(
        "TIP payload rate:       {:.0} KB/s   (paper: 192 KB/s)",
        sample_data_rate(tip_payload_bytes(w), freq) / 1e3
    );
    println!(
        "Oracle trace rate:      {:.1} GB/s   (paper: 179 GB/s)",
        oracle_data_rate(w, clock) / 1e9
    );
    println!();
    println!(
        "runtime overhead (TIP-sized samples):  {:.1}%   (paper: 1.1%)",
        100.0 * runtime_overhead_fraction(tip_sample_bytes(w), freq, clock)
    );
    println!(
        "runtime overhead (PEBS-sized samples): {:.1}%   (paper: 1.0%)",
        100.0 * runtime_overhead_fraction(non_ilp_sample_bytes(), freq, clock)
    );
}
