//! Figure 11c: box plots of instruction-level error for
//! commit-parallelism-aware NCI (NCI+ILP) vs NCI, TIP-ILP, and TIP.
//! The paper's counter-intuitive result: NCI+ILP is *worse* than NCI.
//!
//! Usage: `fig11c [test|small|full]` (default: small).

use tip_bench::experiments::{fig11c, run_suite_with};
use tip_bench::table::{pct, Table};
use tip_bench::DEFAULT_INTERVAL;
use tip_core::{ProfilerId, SamplerConfig};
use tip_workloads::SuiteScale;

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    let profilers = [
        ProfilerId::NciIlp,
        ProfilerId::Nci,
        ProfilerId::TipIlp,
        ProfilerId::Tip,
    ];
    eprintln!("running the suite...");
    let runs = run_suite_with(
        scale_from_args(),
        SamplerConfig::periodic(DEFAULT_INTERVAL),
        &profilers,
    )
    .unwrap_or_else(|e| {
        eprintln!("fig11c: {e}");
        std::process::exit(1);
    });
    let rows = fig11c(&runs);
    let mut t = Table::new(["profiler", "min", "q1", "median", "q3", "max", "mean"]);
    for r in rows {
        t.row([
            r.profiler.label().to_owned(),
            pct(r.min),
            pct(r.q1),
            pct(r.median),
            pct(r.q3),
            pct(r.max),
            pct(r.mean),
        ]);
    }
    println!("Figure 11c: instruction-level error box plots\n(paper means: NCI+ILP 19.3%, NCI 9.3%, TIP-ILP 7.2%, TIP 1.6%)\n");
    print!("{}", t.render());
}
