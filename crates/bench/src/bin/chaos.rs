//! Chaos harness: drives every fault-injection mode through the full stack
//! and checks that each layer degrades gracefully instead of panicking.
//!
//! Usage: `chaos [test|small|full] [--jobs N]` (default: test, all cores;
//! the campaign act fans out over the shared job executor).
//!
//! Three acts:
//!
//! 1. **Trace integrity** — encode a benchmark's commit trace, damage the
//!    bytes with each byte-level [`Fault`], and show the recovering reader
//!    classifying the damage (corrupt chunks skipped, truncation detected)
//!    while replaying everything salvageable.
//! 2. **Profiler resilience** — feed profilers a trace perturbed in flight
//!    (dropped cycles, flipped commit flags) and show profile errors stay
//!    finite and bounded.
//! 3. **Campaign isolation** — run a figure-style sweep in which one
//!    benchmark is forced to panic and another livelocks; the campaign
//!    finishes with a failure report and every other result intact.
//! 4. **Checkpoint corruption** — damage a mid-run `TIPS` snapshot with
//!    bit-flips, truncation, and a stale format version; every variant is
//!    rejected with a classified error, the poison is removed, and the
//!    from-scratch fallback still produces the uninterrupted-run profile.
//!
//! Exits non-zero if any resilience property is violated.

use tip_bench::campaign::{run_campaign, CampaignCli, CampaignConfig};
use tip_bench::checkpoint::{run_profiled_checkpointed, save_checkpoint, CheckpointSpec};
use tip_bench::executor::{Job, RunCtx};
use tip_bench::run::{run_profiled, RunError};
use tip_bench::DEFAULT_INTERVAL;
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_ooo::{Core, CoreConfig, CycleRecord, TraceSink};
use tip_trace::{Fault, FaultPlan, TraceReader, TraceWriter};
use tip_workloads::{benchmark, suite, SuiteScale};

/// Parses the CLI with the shared campaign parser, rejecting the persistence
/// flags chaos manages itself (it writes only scratch directories).
fn cli_from_args() -> CampaignCli {
    let cli = match CampaignCli::parse_with_default(std::env::args().skip(1), SuiteScale::Test) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("chaos: {e}");
            eprintln!("usage: chaos [test|small|full] [--jobs N]");
            std::process::exit(2);
        }
    };
    if cli.out_dir.is_some() || cli.checkpoint_cycles.is_some() || cli.resume {
        eprintln!("chaos: out_dir/--checkpoint/--resume are not supported (chaos manages its own scratch state)");
        eprintln!("usage: chaos [test|small|full] [--jobs N]");
        std::process::exit(2);
    }
    cli
}

struct Count(u64);
impl TraceSink for Count {
    fn on_cycle(&mut self, _r: &CycleRecord) {
        self.0 += 1;
    }
}

/// Act 1: byte-level damage vs the recovering reader.
fn trace_integrity(scale: SuiteScale) -> bool {
    println!("== trace integrity ==");
    let b = benchmark("exchange2", scale);
    let mut core = Core::new(&b.program, CoreConfig::default(), 1);
    // Small chunks so single faults hit a minority of the stream.
    let mut writer = TraceWriter::with_chunk_size(Vec::new(), 4096);
    let summary = core.run(&mut writer, 400_000_000);
    if let Err(e) = writer.flush() {
        println!("    baseline: FAIL — in-memory flush errored: {e}");
        return false;
    }
    let clean = match writer.into_inner() {
        Ok(bytes) => bytes,
        Err(e) => {
            println!("    baseline: FAIL — writer teardown errored: {e}");
            return false;
        }
    };
    println!(
        "baseline: {} cycles encoded into {} bytes",
        summary.cycles,
        clean.len()
    );

    let plans = [
        (
            "flip-bits",
            FaultPlan::new(7, vec![Fault::FlipBits { bits: 16 }]),
        ),
        (
            "corrupt-run",
            FaultPlan::new(8, vec![Fault::CorruptRun { len: 512 }]),
        ),
        (
            "truncate",
            FaultPlan::new(9, vec![Fault::Truncate { keep_fraction: 0.7 }]),
        ),
    ];
    let mut ok = true;
    for (name, plan) in plans {
        let mut bytes = clean.clone();
        plan.apply_bytes(&mut bytes);
        let mut sink = Count(0);
        match TraceReader::new(bytes.as_slice()).replay_recovering(&mut sink) {
            Ok(report) => {
                println!(
                    "{name:>12}: replayed {} of {} cycles, {} chunk(s) skipped, truncated={}, unrecoverable={}",
                    report.records, summary.cycles, report.skipped_chunks, report.truncated,
                    report.unrecoverable,
                );
                if sink.0 != report.records {
                    println!("{name:>12}: FAIL — sink saw {} records", sink.0);
                    ok = false;
                }
            }
            Err(e) => {
                println!("{name:>12}: FAIL — recovering replay errored: {e}");
                ok = false;
            }
        }
    }
    ok
}

/// Act 2: in-flight record damage vs the profilers.
fn profiler_resilience(scale: SuiteScale) -> bool {
    println!("\n== profiler resilience ==");
    let b = benchmark("imagick", scale);
    let profilers = [ProfilerId::Tip, ProfilerId::Nci];
    let sampler = SamplerConfig::periodic(DEFAULT_INTERVAL);

    let baseline = {
        let mut bank = ProfilerBank::new(&b.program, sampler, &profilers);
        let mut core = Core::new(&b.program, CoreConfig::default(), 1);
        core.run(&mut bank, 400_000_000);
        bank.finish()
            .error_of(&b.program, ProfilerId::Tip, Granularity::Instruction)
    };
    println!("baseline TIP instruction error: {:.4}", baseline);

    let plans = [
        (
            "drop-cycles",
            FaultPlan::new(10, vec![Fault::DropCycles { one_in: 50 }]),
        ),
        (
            "flip-commits",
            FaultPlan::new(11, vec![Fault::FlipCommitFlags { one_in: 50 }]),
        ),
    ];
    let mut ok = true;
    for (name, plan) in plans {
        let bank = ProfilerBank::new(&b.program, sampler, &profilers);
        let mut sink = plan.wrap_sink(bank);
        let mut core = Core::new(&b.program, CoreConfig::default(), 1);
        core.run(&mut sink, 400_000_000);
        println!(
            "{name:>12}: {} dropped, {} flipped",
            sink.dropped(),
            sink.flipped()
        );
        let result = sink.into_inner().finish();
        for p in profilers {
            let err = result.error_of(&b.program, p, Granularity::Instruction);
            println!("{:>12}  {p:?} error {err:.4}", "");
            // Graceful degradation: errors stay finite, in range, and in
            // the same order of magnitude as the damage (never NaN/inf).
            if !err.is_finite() || !(0.0..=1.0).contains(&err) {
                println!("{name:>12}: FAIL — unbounded or NaN error");
                ok = false;
            }
        }
    }
    ok
}

/// Act 3: a sweep where one workload panics and one livelocks, fanned out
/// over the shared job executor.
fn campaign_isolation(scale: SuiteScale, jobs: usize) -> bool {
    println!("\n== campaign isolation ({jobs} worker(s)) ==");
    let dir = std::env::temp_dir().join(format!("tip-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = CampaignConfig {
        profilers: vec![ProfilerId::Tip],
        max_attempts: 2,
        jobs,
        out_dir: Some(dir.clone()),
        ..CampaignConfig::default()
    };
    let panic_plan = FaultPlan::new(12, vec![Fault::ForcePanic]);
    let outcome = run_campaign(suite(scale), &config, move |job: &Job, ctx: &RunCtx| {
        let bench = &job.bench;
        if bench.name == "mcf" && panic_plan.forces_panic() {
            panic!("chaos: forced panic in {}", bench.name);
        }
        if bench.name == "lbm" {
            // Wedge the core mid-run: the watchdog turns the livelock into
            // a structured diagnostic instead of an endless spin.
            let mut bank = ProfilerBank::new(&bench.program, job.sampler, &job.profilers);
            let mut core = Core::new(&bench.program, CoreConfig::default(), ctx.seed);
            for _ in 0..200 {
                core.step(&mut bank);
            }
            core.inject_lost_redirect();
            return core
                .run_to_completion(&mut bank, 400_000_000)
                .map(|_| unreachable!("wedged core cannot complete"))
                .map_err(|source| RunError::Sim {
                    bench: bench.name.to_owned(),
                    source,
                });
        }
        run_profiled(
            &bench.program,
            CoreConfig::default(),
            job.sampler,
            &job.profilers,
            ctx.seed,
        )
    });
    print!("{}", outcome.summary());
    let mut ok = true;
    if outcome.failed.len() != 2 {
        println!("FAIL — expected exactly 2 casualties (mcf, lbm)");
        ok = false;
    }
    let results = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    println!(
        "persisted {} files in {} (incl. failures.txt, journal.txt, metrics.txt)",
        results,
        dir.display()
    );
    // Every benchmark leaves a result file, plus the failure report, the
    // resume journal, and the campaign metrics.
    if results != outcome.completed.len() + outcome.failed.len() + 3 {
        println!("FAIL — missing per-benchmark result files");
        ok = false;
    }
    let _ = std::fs::remove_dir_all(&dir);
    ok
}

/// Forwards every record to both the trace writer and the profiler bank —
/// the same shape the checkpointed runner uses internally.
struct Tee<'a, A, B>(&'a mut A, &'a mut B);
impl<A: TraceSink, B: TraceSink> TraceSink for Tee<'_, A, B> {
    fn on_cycle(&mut self, r: &CycleRecord) {
        self.0.on_cycle(r);
        self.1.on_cycle(r);
    }
}

/// Act 4: damaged `TIPS` snapshots vs the checkpointed runner.
fn checkpoint_corruption(scale: SuiteScale) -> bool {
    println!("\n== checkpoint corruption ==");
    let b = benchmark("exchange2", scale);
    let sampler = SamplerConfig::periodic(DEFAULT_INTERVAL);
    let profilers = [ProfilerId::Tip];
    let seed = 13;

    // The ground truth a recovered run must reproduce.
    let plain = match run_profiled(&b.program, CoreConfig::default(), sampler, &profilers, seed) {
        Ok(run) => run,
        Err(e) => {
            println!("    baseline: FAIL — uninterrupted run errored: {e}");
            return false;
        }
    };

    let dir = std::env::temp_dir().join(format!("tip-chaos-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        println!("    setup: FAIL — cannot create {}: {e}", dir.display());
        return false;
    }

    // Hand-build an interrupted run: simulate 1 000 cycles, seal the trace,
    // persist a real checkpoint, then walk away as if the process died.
    let spec = CheckpointSpec {
        snapshot_path: dir.join("exchange2.tips"),
        trace_path: dir.join("exchange2.trace"),
        every_cycles: 1_000,
        resume: true,
    };
    let pristine = {
        let mut core = Core::new(&b.program, CoreConfig::default(), seed);
        let mut bank = ProfilerBank::new(&b.program, sampler, &profilers);
        let file = match std::fs::File::create(&spec.trace_path) {
            Ok(f) => f,
            Err(e) => {
                println!("    setup: FAIL — cannot create trace file: {e}");
                return false;
            }
        };
        let mut writer = TraceWriter::new(file);
        {
            let mut tee = Tee(&mut writer, &mut bank);
            core.run(&mut tee, 1_000);
        }
        if let Err(e) = writer.flush() {
            println!("    setup: FAIL — trace flush errored: {e}");
            return false;
        }
        if let Err(e) = save_checkpoint(
            &spec.snapshot_path,
            core.stats().cycles,
            &core.snapshot(),
            &bank.snapshot(),
            writer.position(),
        ) {
            println!("    setup: FAIL — checkpoint save errored: {e}");
            return false;
        }
        match std::fs::read(&spec.snapshot_path) {
            Ok(bytes) => bytes,
            Err(e) => {
                println!("    setup: FAIL — checkpoint read-back errored: {e}");
                return false;
            }
        }
    };
    println!(
        "interrupted at cycle 1000: snapshot is {} bytes",
        pristine.len()
    );

    let plans = [
        (
            "flip-bits",
            FaultPlan::new(21, vec![Fault::FlipBits { bits: 48 }]),
        ),
        (
            "truncate",
            FaultPlan::new(22, vec![Fault::Truncate { keep_fraction: 0.5 }]),
        ),
        (
            "stale-version",
            FaultPlan::new(23, vec![Fault::StaleSnapshotHeader]),
        ),
    ];
    let mut ok = true;
    for (name, plan) in plans {
        let mut bytes = pristine.clone();
        plan.apply_snapshot(&mut bytes);
        if let Err(e) = std::fs::write(&spec.snapshot_path, &bytes) {
            println!("{name:>13}: FAIL — cannot plant damage: {e}");
            ok = false;
            continue;
        }
        match run_profiled_checkpointed(
            &b.program,
            CoreConfig::default(),
            sampler,
            &profilers,
            seed,
            &spec,
        ) {
            Err(RunError::Checkpoint { source, .. }) => {
                println!("{name:>13}: rejected as expected ({source})");
            }
            Err(e) => {
                println!("{name:>13}: FAIL — misclassified: {e}");
                ok = false;
            }
            Ok(_) => {
                println!("{name:>13}: FAIL — damaged snapshot restored silently");
                ok = false;
            }
        }
        if spec.snapshot_path.exists() {
            println!("{name:>13}: FAIL — poisoned snapshot not removed");
            ok = false;
            continue;
        }
        // The retry path: with the poison gone, the same invocation runs
        // from scratch and still matches the uninterrupted baseline.
        match run_profiled_checkpointed(
            &b.program,
            CoreConfig::default(),
            sampler,
            &profilers,
            seed,
            &spec,
        ) {
            Ok(run) => {
                let equiv = run.summary == plain.summary
                    && run.bank.samples_of(ProfilerId::Tip)
                        == plain.bank.samples_of(ProfilerId::Tip);
                if equiv {
                    println!("{name:>13}: from-scratch fallback matches baseline");
                } else {
                    println!("{name:>13}: FAIL — fallback diverged from baseline");
                    ok = false;
                }
            }
            Err(e) => {
                println!("{name:>13}: FAIL — fallback errored: {e}");
                ok = false;
            }
        }
    }

    // Finally, an intact snapshot: restore it and finish the run, expecting
    // profiles identical to the uninterrupted baseline (resume equivalence).
    if let Err(e) = std::fs::write(&spec.snapshot_path, &pristine) {
        println!("       intact: FAIL — cannot restore snapshot: {e}");
        ok = false;
    } else {
        match run_profiled_checkpointed(
            &b.program,
            CoreConfig::default(),
            sampler,
            &profilers,
            seed,
            &spec,
        ) {
            Ok(run) => {
                let equiv = run.summary == plain.summary
                    && run.bank.samples_of(ProfilerId::Tip)
                        == plain.bank.samples_of(ProfilerId::Tip);
                if equiv {
                    println!("       intact: resumed run matches the uninterrupted baseline");
                } else {
                    println!("       intact: FAIL — resumed run diverged");
                    ok = false;
                }
            }
            Err(e) => {
                println!("       intact: FAIL — intact snapshot failed to resume: {e}");
                ok = false;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    ok
}

fn main() {
    let cli = cli_from_args();
    let scale = cli.scale;
    let ok = [
        trace_integrity(scale),
        profiler_resilience(scale),
        campaign_isolation(scale, cli.effective_jobs()),
        checkpoint_corruption(scale),
    ];
    if ok.iter().all(|&x| x) {
        println!("\nchaos: all resilience properties held");
    } else {
        println!("\nchaos: FAILURES detected");
        std::process::exit(1);
    }
}
