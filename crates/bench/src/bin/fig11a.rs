//! Figure 11a: instruction-level error vs sampling frequency for NCI,
//! TIP-ILP, and TIP. TIP keeps improving beyond the 4 kHz-equivalent rate
//! while the others saturate at their systematic floor.
//!
//! Usage: `fig11a [test|small|full]` (default: test — this experiment runs
//! the suite five times).

use tip_bench::experiments::{fig11a, FREQUENCIES};
use tip_bench::table::{pct, Table};
use tip_workloads::SuiteScale;

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("small") => SuiteScale::Small,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Test,
    }
}

fn main() {
    eprintln!("running the suite once per frequency...");
    let rows = fig11a(scale_from_args()).unwrap_or_else(|e| {
        eprintln!("fig11a: {e}");
        std::process::exit(1);
    });
    let mut header = vec!["profiler".to_owned()];
    header.extend(FREQUENCIES.iter().map(|&(l, _)| l.to_owned()));
    let mut t = Table::new(header);
    for r in rows {
        let mut cells = vec![r.profiler.label().to_owned()];
        cells.extend(r.errors.iter().map(|&(_, e)| pct(e)));
        t.row(cells);
    }
    println!("Figure 11a: mean instruction-level error vs sampling frequency\n(frequencies are 4 kHz-equivalents of our scaled interval)\n");
    print!("{}", t.render());
}
