//! Figure 13: per-function time breakdown of the original vs optimized
//! Imagick, plus the overall speed-up (paper: 1.93x, IPC 1.2 -> 2.3).
//!
//! Usage: `fig13 [test|small|full]` (default: small).

use tip_bench::experiments::fig13;
use tip_bench::table::Table;
use tip_core::CycleCategory;
use tip_workloads::SuiteScale;

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    let f = fig13(scale_from_args()).unwrap_or_else(|e| {
        eprintln!("fig13: {e}");
        std::process::exit(1);
    });
    let mut header = vec![
        "function".to_owned(),
        "version".to_owned(),
        "total".to_owned(),
    ];
    header.extend(CycleCategory::ALL.iter().map(|c| c.label().to_owned()));
    let mut t = Table::new(header);
    for (orig, opt) in f.original.iter().zip(&f.optimized) {
        for (label, row) in [("orig", orig), ("opt", opt)] {
            let total: f64 = row.1.iter().sum();
            let mut cells = vec![row.0.clone(), label.to_owned(), format!("{:.0}", total)];
            cells.extend(row.1.iter().map(|c| format!("{:.0}", c)));
            t.row(cells);
        }
    }
    println!("Figure 13: Imagick time breakdown (cycles per function)\n");
    print!("{}", t.render());
    println!();
    println!("speed-up:  {:.2}x   (paper: 1.93x)", f.speedup);
    println!(
        "IPC:       {:.2} -> {:.2}   (paper: 1.2 -> 2.3)",
        f.ipc.0, f.ipc.1
    );
}
