//! Figure 1: average instruction-level profile error of the five profiling
//! strategies, and the same for the flush-intensive Imagick benchmark.
//!
//! Usage: `fig01 [test|small|full]` (default: small).

use tip_bench::experiments::{error_rows, mean_errors, run_suite_with};
use tip_bench::table::{pct, Table};
use tip_bench::DEFAULT_INTERVAL;
use tip_core::{ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_workloads::SuiteScale;

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    let profilers = [
        ProfilerId::Software,
        ProfilerId::Dispatch,
        ProfilerId::Lci,
        ProfilerId::Nci,
        ProfilerId::Tip,
    ];
    eprintln!("running the suite...");
    let runs = run_suite_with(
        scale_from_args(),
        SamplerConfig::periodic(DEFAULT_INTERVAL),
        &profilers,
    )
    .unwrap_or_else(|e| {
        eprintln!("fig01: {e}");
        std::process::exit(1);
    });
    let rows = error_rows(&runs, Granularity::Instruction, &profilers);
    let avg = mean_errors(&rows, &profilers);
    let imagick = rows
        .iter()
        .find(|r| r.name == "imagick")
        .expect("imagick in suite");

    let mut t = Table::new([
        "profiler",
        "average error",
        "imagick error",
        "paper avg",
        "paper imagick",
    ]);
    let paper = [
        ("61.8%", "~45%"),
        ("53.1%", "~28%"),
        ("55.4%", "~52%"),
        ("9.3%", "21.0%"),
        ("1.6%", "<5%"),
    ];
    for (i, &(p, e)) in avg.iter().enumerate() {
        t.row([
            p.label().to_owned(),
            pct(e),
            pct(imagick.errors[i].1),
            paper[i].0.to_owned(),
            paper[i].1.to_owned(),
        ]);
    }
    println!("Figure 1: instruction-level profile error, suite average and Imagick\n");
    print!("{}", t.render());
}
