//! `profile` — a perf-report-style command-line profiler for the simulated
//! system.
//!
//! ```text
//! usage: profile <benchmark> [options]
//!   --profiler  <tip|nci|lci|dispatch|software>   (default tip)
//!   --scale     <test|small|full>                 (default small)
//!   --level     <instr|block|func>                (default func)
//!   --interval  <cycles>                          (default 149)
//!   --annotate  <function-name>   per-instruction listing of one function
//!   --stacks                      per-function cycle stacks (TIP only)
//!   --oracle                      show the golden reference side by side
//! ```
//!
//! Example: `profile imagick --stacks --annotate ceil`

use tip_core::{sampled_symbol_stacks, CycleCategory, ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::{Granularity, SymbolId};
use tip_ooo::{Core, CoreConfig};
use tip_workloads::{benchmark, SuiteScale, BENCHMARK_NAMES};

struct Options {
    bench: &'static str,
    profiler: ProfilerId,
    scale: SuiteScale,
    level: Granularity,
    interval: u64,
    annotate: Option<String>,
    stacks: bool,
    oracle: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: profile <benchmark> [--profiler tip|nci|lci|dispatch|software] \
         [--scale test|small|full] [--level instr|block|func] [--interval N] \
         [--annotate FUNC] [--stacks] [--oracle]\nbenchmarks: {BENCHMARK_NAMES:?}"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let Some(bench_arg) = args.next() else {
        usage()
    };
    let Some(bench) = BENCHMARK_NAMES.iter().copied().find(|&n| n == bench_arg) else {
        eprintln!("unknown benchmark `{bench_arg}`");
        usage()
    };
    let mut opts = Options {
        bench,
        profiler: ProfilerId::Tip,
        scale: SuiteScale::Small,
        level: Granularity::Function,
        interval: 149,
        annotate: None,
        stacks: false,
        oracle: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--profiler" => {
                opts.profiler = match args.next().as_deref() {
                    Some("tip") => ProfilerId::Tip,
                    Some("nci") => ProfilerId::Nci,
                    Some("lci") => ProfilerId::Lci,
                    Some("dispatch") => ProfilerId::Dispatch,
                    Some("software") => ProfilerId::Software,
                    _ => usage(),
                }
            }
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("test") => SuiteScale::Test,
                    Some("small") => SuiteScale::Small,
                    Some("full") => SuiteScale::Full,
                    _ => usage(),
                }
            }
            "--level" => {
                opts.level = match args.next().as_deref() {
                    Some("instr") => Granularity::Instruction,
                    Some("block") => Granularity::BasicBlock,
                    Some("func") => Granularity::Function,
                    _ => usage(),
                }
            }
            "--interval" => {
                opts.interval = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--annotate" => opts.annotate = Some(args.next().unwrap_or_else(|| usage())),
            "--stacks" => opts.stacks = true,
            "--oracle" => opts.oracle = true,
            _ => usage(),
        }
    }
    opts
}

fn bar(frac: f64, width: usize) -> String {
    "#".repeat((frac * width as f64).round() as usize)
}

fn main() {
    let opts = parse_args();
    let bench = benchmark(opts.bench, opts.scale);
    let program = &bench.program;

    eprintln!("simulating {} ({:?} scale)...", opts.bench, opts.scale);
    let mut bank = ProfilerBank::new(
        program,
        SamplerConfig::periodic(opts.interval),
        &[opts.profiler],
    );
    let mut core = Core::new(program, CoreConfig::default(), 42);
    let summary = core.run(&mut bank, 2_000_000_000);
    let result = bank.finish();

    println!(
        "# {}: {} instructions, {} cycles, IPC {:.2}, {} samples ({})",
        opts.bench,
        summary.instructions,
        summary.cycles,
        core.stats().ipc(),
        result.samples_of(opts.profiler).len(),
        opts.profiler
    );

    // Ranked symbol report.
    let profile = result.profile_of(program, opts.profiler, opts.level);
    let oracle = result.oracle.profile(program, opts.level);
    println!("\n## {} profile ({} level)", opts.profiler, opts.level);
    for (sym, share) in profile.ranked().into_iter().take(16) {
        let name = program.symbol_name(opts.level, sym);
        if opts.oracle {
            println!(
                "{:>7.2}%  (oracle {:>6.2}%)  {:<40} {}",
                100.0 * share,
                100.0 * oracle.share(sym),
                name,
                bar(share, 40)
            );
        } else {
            println!("{:>7.2}%  {:<40} {}", 100.0 * share, name, bar(share, 40));
        }
    }
    if opts.oracle {
        println!(
            "\nprofile error vs oracle: {:.2}%",
            100.0 * result.error_of(program, opts.profiler, opts.level)
        );
    }

    // Per-function cycle stacks from the profiler's own samples.
    if opts.stacks {
        if opts.profiler != ProfilerId::Tip {
            eprintln!("(--stacks needs TIP's category-labelled samples; skipping)");
        } else {
            let map = program.symbol_map(Granularity::Function);
            let stacks = sampled_symbol_stacks(result.samples_of(ProfilerId::Tip), &map);
            let total: f64 = stacks.iter().map(|s| s.total()).sum();
            println!("\n## why is each function slow? (TIP sampled cycle stacks)");
            for f in program.functions() {
                let st = &stacks[f.id().index()];
                if st.total() < 0.005 * total {
                    continue;
                }
                let parts: Vec<String> = CycleCategory::ALL
                    .iter()
                    .filter(|&&c| st.get(c) > 0.02 * st.total())
                    .map(|&c| format!("{c} {:.0}%", 100.0 * st.get(c) / st.total()))
                    .collect();
                println!(
                    "{:<20} {:>6.1}%  [{}]",
                    f.name(),
                    100.0 * st.total() / total,
                    parts.join(", ")
                );
            }
        }
    }

    // Instruction annotation of one function.
    if let Some(func_name) = &opts.annotate {
        let Some(func) = program.functions().iter().find(|f| f.name() == *func_name) else {
            eprintln!("no function named `{func_name}`");
            std::process::exit(2);
        };
        let instr_profile = result.profile_of(program, opts.profiler, Granularity::Instruction);
        let func_total: f64 = func
            .block_range()
            .flat_map(|bi| program.blocks()[bi].instr_range())
            .map(|gi| instr_profile.share(SymbolId(gi as u32)))
            .sum();
        println!(
            "\n## annotate {func_name} ({:.1}% of runtime)",
            100.0 * func_total
        );
        for bi in func.block_range() {
            for gi in program.blocks()[bi].instr_range() {
                let idx = tip_isa::InstrIdx::new(gi as u32);
                let share = instr_profile.share(SymbolId(gi as u32));
                let within = if func_total > 0.0 {
                    share / func_total
                } else {
                    0.0
                };
                println!(
                    "{:>8}  {:<6} {:>6.1}%  {}",
                    program.addr_of(idx).to_string(),
                    program.instr(idx).kind().to_string(),
                    100.0 * within,
                    bar(within, 30)
                );
            }
        }
    }
}
