//! Figure 10: instruction-level profile errors for NCI, TIP-ILP, and TIP
//! across the suite.
//!
//! Usage: `fig10 [test|small|full]` (default: small).

use tip_bench::experiments::{class_mean_errors, error_rows, mean_errors, run_suite_with};
use tip_bench::table::{pct, Table};
use tip_bench::DEFAULT_INTERVAL;
use tip_core::{ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_workloads::{SuiteScale, WorkloadClass};

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    let profilers = [ProfilerId::Nci, ProfilerId::TipIlp, ProfilerId::Tip];
    eprintln!("running the suite...");
    let runs = run_suite_with(
        scale_from_args(),
        SamplerConfig::periodic(DEFAULT_INTERVAL),
        &profilers,
    );
    let rows = error_rows(&runs, Granularity::Instruction, &profilers);

    let mut t = Table::new(["benchmark", "class", "NCI", "TIP-ILP", "TIP"]);
    for r in &rows {
        t.row([
            r.name.to_owned(),
            r.class.to_string(),
            pct(r.errors[0].1),
            pct(r.errors[1].1),
            pct(r.errors[2].1),
        ]);
    }
    for class in [
        WorkloadClass::Compute,
        WorkloadClass::Flush,
        WorkloadClass::Stall,
    ] {
        let m = class_mean_errors(&rows, class, &profilers);
        t.row([
            format!("[{class} mean]"),
            String::new(),
            pct(m[0].1),
            pct(m[1].1),
            pct(m[2].1),
        ]);
    }
    let m = mean_errors(&rows, &profilers);
    t.row([
        "[average]".to_owned(),
        String::new(),
        pct(m[0].1),
        pct(m[1].1),
        pct(m[2].1),
    ]);
    println!("Figure 10: instruction-level profile error (paper avgs: NCI 9.3%, TIP-ILP 7.2%, TIP 1.6%)\n");
    print!("{}", t.render());
}
