//! Figure 10: instruction-level profile errors for NCI, TIP-ILP, and TIP
//! across the suite.
//!
//! Usage: `fig10 [test|small|full] [out_dir] [--jobs N] [--checkpoint N]
//! [--resume]` (default: small, all cores). Runs as a fault-tolerant
//! campaign fanned out over `--jobs N` worker threads with a deterministic
//! merge (outputs are byte-identical at any worker count; `metrics.txt`
//! records the per-job timing and the speedup): a benchmark that
//! dies is retried, then skipped with a report, and per-benchmark results
//! land in `out_dir` incrementally via atomic renames. With `--checkpoint N`
//! each benchmark also persists a restorable mid-run snapshot every N
//! cycles; after a crash, re-running with `--resume` skips completed
//! benchmarks and continues the interrupted one from its last checkpoint.

use tip_bench::campaign::{run_suite_campaign, CampaignCli};
use tip_bench::experiments::{class_mean_errors, error_rows, mean_errors};
use tip_bench::table::{pct, Table};
use tip_core::ProfilerId;
use tip_isa::Granularity;
use tip_workloads::WorkloadClass;

fn main() {
    let profilers = [ProfilerId::Nci, ProfilerId::TipIlp, ProfilerId::Tip];
    let cli = match CampaignCli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("fig10: {e}");
            eprintln!(
                "usage: fig10 [test|small|full] [out_dir] [--jobs N] [--checkpoint N] [--resume]"
            );
            std::process::exit(2);
        }
    };
    eprintln!("running the suite...");
    let outcome = run_suite_campaign(cli.scale, &cli.config(&profilers));
    eprint!("{}", outcome.summary());
    let (runs, failed) = outcome.into_parts();
    if runs.is_empty() {
        eprintln!("fig10: no benchmark completed");
        std::process::exit(1);
    }
    let rows = error_rows(&runs, Granularity::Instruction, &profilers);

    let mut t = Table::new(["benchmark", "class", "NCI", "TIP-ILP", "TIP"]);
    for r in &rows {
        t.row([
            r.name.to_owned(),
            r.class.to_string(),
            pct(r.errors[0].1),
            pct(r.errors[1].1),
            pct(r.errors[2].1),
        ]);
    }
    for class in [
        WorkloadClass::Compute,
        WorkloadClass::Flush,
        WorkloadClass::Stall,
    ] {
        let m = class_mean_errors(&rows, class, &profilers);
        t.row([
            format!("[{class} mean]"),
            String::new(),
            pct(m[0].1),
            pct(m[1].1),
            pct(m[2].1),
        ]);
    }
    let m = mean_errors(&rows, &profilers);
    t.row([
        "[average]".to_owned(),
        String::new(),
        pct(m[0].1),
        pct(m[1].1),
        pct(m[2].1),
    ]);
    println!("Figure 10: instruction-level profile error (paper avgs: NCI 9.3%, TIP-ILP 7.2%, TIP 1.6%)\n");
    print!("{}", t.render());
    if !failed.is_empty() {
        println!(
            "\nWARNING: {} benchmark(s) failed and are excluded above.",
            failed.len()
        );
        std::process::exit(2);
    }
}
