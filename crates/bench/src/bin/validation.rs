//! Section 5.2 validation: the relative Software-vs-NCI profile gap should
//! be in the same ballpark across two different platforms. The paper
//! compares an Intel i7 against FireSim; we compare our 4-wide core against
//! a 2-wide configuration.
//!
//! Usage: `validation [test|small|full]` (default: small).

use tip_bench::experiments::validation;
use tip_bench::table::{pct, Table};
use tip_workloads::SuiteScale;

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    eprintln!("running 6 benchmarks on two core configurations...");
    let rows = validation(scale_from_args()).unwrap_or_else(|e| {
        eprintln!("validation: {e}");
        std::process::exit(1);
    });
    let mut t = Table::new(["configuration", "instr-level gap", "function-level gap"]);
    for r in &rows {
        t.row([r.config.clone(), pct(r.instr_gap), pct(r.func_gap)]);
    }
    println!("Validation: Software-vs-NCI relative profile difference across platforms\n(paper: 69% Intel vs 57% FireSim at instruction level; 4% vs 7% at function level)\n");
    print!("{}", t.render());
    let ratio = rows[0].instr_gap / rows[1].instr_gap.max(1e-9);
    println!("\ninstruction-level gap ratio between platforms: {ratio:.2} (paper: 69/57 = 1.21)");
}
