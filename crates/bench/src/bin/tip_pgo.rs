//! The closed profile → transform → measure loop, per profiler (Section 6
//! generalized): profile a workload under the full bank, apply the `tip-pgo`
//! rewrite pass guided by each profiler's profile, prove every rewrite
//! equivalent, re-simulate, and report the speedup each guide bought.
//!
//! Usage:
//!   `tip-pgo [BENCH] [test|small|full] [--seed N] [--out FILE]`
//!       run the loop for one suite workload (default: imagick, test scale)
//!   `tip-pgo smoke [--out FILE]`
//!       CI gate: imagick + the perlbench flush-heavy synthetic at test
//!       scale; exits non-zero unless the TIP-guided rewrite of imagick is
//!       a real speedup (> 1.0x). Writes `BENCH_PR10.json`.

use tip_bench::pgo::{closed_loop, PgoReport};
use tip_pgo::PgoConfig;
use tip_workloads::SuiteScale;

fn write_reports(out: &str, reports: &[PgoReport]) {
    let mut s = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(&r.to_json());
        if i + 1 < reports.len() {
            // to_json ends with "}\n"; splice the separator in.
            s.truncate(s.trim_end().len());
            s.push_str(",\n");
        }
    }
    s.push_str("]\n");
    if let Err(e) = std::fs::write(out, s) {
        eprintln!("tip-pgo: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}

fn print_report(r: &PgoReport) {
    println!("== {} ({:?} scale, seed {}) ==\n", r.bench, r.scale, r.seed);
    print!("{}", r.table());
    for row in &r.rows {
        if !row.actions.is_empty() {
            println!("\n{} rewrites:", row.profiler.label());
            for a in &row.actions {
                println!("  {a}");
            }
        }
    }
    println!();
}

fn run_loop(bench: &'static str, scale: SuiteScale, seed: u64) -> PgoReport {
    closed_loop(bench, scale, &PgoConfig::default(), seed).unwrap_or_else(|e| {
        eprintln!("tip-pgo: {bench}: {e}");
        std::process::exit(1);
    })
}

fn smoke(out: &str) {
    let imagick = run_loop("imagick", SuiteScale::Test, 42);
    let synth = run_loop("perlbench", SuiteScale::Test, 42);
    print_report(&imagick);
    print_report(&synth);
    write_reports(out, &[imagick, synth]);

    let tip = tip_speedup_from(&imagick_ref(out));
    if tip <= 1.0 {
        eprintln!("tip-pgo smoke: TIP-guided imagick speedup {tip:.3}x is not > 1.0x");
        std::process::exit(1);
    }
    println!("smoke ok: TIP-guided imagick speedup {tip:.3}x");
}

// The smoke gate re-reads the just-written artifact so CI verifies the file,
// not just the in-memory numbers.
fn imagick_ref(out: &str) -> String {
    std::fs::read_to_string(out).unwrap_or_else(|e| {
        eprintln!("tip-pgo smoke: cannot re-read {out}: {e}");
        std::process::exit(1);
    })
}

fn tip_speedup_from(json: &str) -> f64 {
    // Find the first TIP row's speedup in the artifact (rows are in bank
    // order; TIP is last, imagick is the first report).
    let key = "\"guide\": \"TIP\", \"cycles\": ";
    let Some(at) = json.find(key) else {
        eprintln!("tip-pgo smoke: no TIP row in artifact");
        std::process::exit(1);
    };
    let rest = &json[at..];
    let Some(sp) = rest
        .find("\"speedup\": ")
        .map(|i| &rest[i + "\"speedup\": ".len()..])
    else {
        eprintln!("tip-pgo smoke: malformed TIP row");
        std::process::exit(1);
    };
    let num: String = sp
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().unwrap_or(0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_PR10.json");
    let mut seed = 42u64;
    let mut scale = SuiteScale::Test;
    let mut bench: &'static str = "imagick";
    let mut smoke_mode = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "smoke" => smoke_mode = true,
            "test" => scale = SuiteScale::Test,
            "small" => scale = SuiteScale::Small,
            "full" => scale = SuiteScale::Full,
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("tip-pgo: --seed needs a number");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("tip-pgo: --out needs a path");
                    std::process::exit(2);
                });
            }
            name => {
                // The suite takes &'static str names; accept only known ones.
                match tip_workloads::BENCHMARK_NAMES.iter().find(|n| **n == name) {
                    Some(n) => bench = n,
                    None => {
                        eprintln!("tip-pgo: unknown benchmark `{name}`");
                        std::process::exit(2);
                    }
                }
            }
        }
        i += 1;
    }

    if smoke_mode {
        smoke(&out);
        return;
    }

    let report = run_loop(bench, scale, seed);
    print_report(&report);
    write_reports(&out, &[report]);
}
