//! Figure 12: function- and instruction-level profiles of Imagick for TIP
//! and NCI compared to Oracle. TIP pinpoints the frflags/fsflags CSR
//! instructions; NCI blames other instructions.
//!
//! Usage: `fig12 [test|small|full]` (default: small).

use tip_bench::experiments::fig12;
use tip_bench::table::{pct, Table};
use tip_workloads::SuiteScale;

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    let f = fig12(scale_from_args()).unwrap_or_else(|e| {
        eprintln!("fig12: {e}");
        std::process::exit(1);
    });
    let mut t = Table::new(["function", "Oracle", "TIP", "NCI"]);
    for (name, o, tip, nci) in &f.functions {
        t.row([name.clone(), pct(*o), pct(*tip), pct(*nci)]);
    }
    println!("Figure 12 (top): function-level profile (share of total runtime)\n");
    print!("{}", t.render());

    let mut t = Table::new(["instruction in ceil()", "Oracle", "TIP", "NCI"]);
    for (label, o, tip, nci) in &f.ceil_instrs {
        t.row([label.clone(), pct(*o), pct(*tip), pct(*nci)]);
    }
    println!("\nFigure 12 (bottom): instruction-level profile within ceil()\n(shares of time within the function; `csr` rows are frflags/fsflags)\n");
    print!("{}", t.render());
}
