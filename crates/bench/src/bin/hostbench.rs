//! Host-throughput benchmark: simulated cycles per host-second.
//!
//! Usage: `hostbench [--quick] [--scale test|small|full] [--budget N]
//! [--trials N] [--out FILE] [--baseline FILE]`
//!
//! Runs the fixed benchmark × mode matrix (raw simulator, fig08 profiler
//! bank, bank + streaming delta flushes, framed tracing), prints the
//! throughput table, and writes the perf-trajectory point to `--out`
//! (default `BENCH_PR4.json` in the current directory; PR 8 records
//! `BENCH_PR8.json`). With `--baseline FILE` the aggregate of a previous
//! report is embedded alongside the new numbers and per-mode speedups are
//! computed — this is how the PR-4 acceptance criterion (bank-mode speedup
//! vs the pre-optimization build) is recorded. The `bank`→`stream` gap is
//! the PR-8 delta-flush overhead (must stay under 3%).

use std::process::exit;

use tip_bench::hostbench::{read_aggregate, run_hostbench, HostBenchOptions};
use tip_workloads::SuiteScale;

fn usage() -> ! {
    eprintln!(
        "usage: hostbench [--quick] [--scale test|small|full] [--budget N] [--trials N] [--out FILE] [--baseline FILE]"
    );
    exit(2);
}

fn main() {
    let mut options = HostBenchOptions::full();
    let mut out = String::from("BENCH_PR4.json");
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let quick = HostBenchOptions::quick();
                options.quick = true;
                options.budget = quick.budget;
                options.trials = quick.trials;
            }
            "--scale" => {
                options.scale = match args.next().as_deref() {
                    Some("test") => SuiteScale::Test,
                    Some("small") => SuiteScale::Small,
                    Some("full") => SuiteScale::Full,
                    _ => usage(),
                }
            }
            "--budget" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.budget = n,
                None => usage(),
            },
            "--trials" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.trials = n,
                None => usage(),
            },
            "--out" => match args.next() {
                Some(p) => out = p,
                None => usage(),
            },
            "--baseline" => baseline_path = args.next().or_else(|| usage()),
            _ => usage(),
        }
    }

    let baseline = baseline_path.as_deref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("hostbench: cannot read baseline {p}: {e}");
            exit(2);
        });
        read_aggregate(&text).unwrap_or_else(|| {
            eprintln!("hostbench: {p} has no readable aggregate block");
            exit(2);
        })
    });

    eprintln!(
        "hostbench: measuring {} matrix at {:?} scale ({} trial(s), {}-cycle budget)...",
        if options.quick { "quick" } else { "full" },
        options.scale,
        options.trials,
        options.budget
    );
    let report = run_hostbench(&options);
    println!("Host throughput (simulated cycles per host-second)\n");
    print!("{}", report.render_table());
    let a = report.aggregate();
    if let Some(b) = &baseline {
        println!(
            "\nbank-mode aggregate: {:.2} Mcycles/s vs baseline {:.2} Mcycles/s ({:.2}x)",
            a.bank_mcycles_per_s,
            b.bank_mcycles_per_s,
            if b.bank_mcycles_per_s > 0.0 {
                a.bank_mcycles_per_s / b.bank_mcycles_per_s
            } else {
                0.0
            }
        );
    } else {
        println!(
            "\nbank-mode aggregate: {:.2} Mcycles/s",
            a.bank_mcycles_per_s
        );
    }
    println!(
        "delta-flush overhead (bank -> stream): {:+.2}%",
        a.stream_overhead() * 100.0
    );
    let json = report.to_json(baseline.as_ref());
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("hostbench: cannot write {out}: {e}");
        exit(1);
    }
    eprintln!("hostbench: wrote {out}");
}
