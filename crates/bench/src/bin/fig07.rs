//! Figure 7: normalized commit-stage cycle stacks for the 27-benchmark
//! suite, as collected by the Oracle.
//!
//! Usage: `fig07 [test|small|full]` (default: small).

use tip_bench::experiments::{fig07, run_suite_with};
use tip_bench::table::{pct, Table};
use tip_bench::DEFAULT_INTERVAL;
use tip_core::{CycleCategory, ProfilerId, SamplerConfig};
use tip_workloads::SuiteScale;

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running the suite at {scale:?} scale (Oracle only)...");
    let runs = run_suite_with(
        scale,
        SamplerConfig::periodic(DEFAULT_INTERVAL),
        &[ProfilerId::Tip],
    )
    .unwrap_or_else(|e| {
        eprintln!("fig07: {e}");
        std::process::exit(1);
    });
    let rows = fig07(&runs);

    let mut header = vec!["benchmark".to_owned(), "class".to_owned(), "IPC".to_owned()];
    header.extend(CycleCategory::ALL.iter().map(|c| c.label().to_owned()));
    let mut t = Table::new(header);
    for r in rows {
        let mut cells = vec![
            r.name.to_owned(),
            r.class.to_string(),
            format!("{:.2}", r.ipc),
        ];
        cells.extend(r.fractions.iter().map(|&f| pct(f)));
        t.row(cells);
    }
    println!("Figure 7: normalized cycle stacks collected at commit\n");
    print!("{}", t.render());
}
