//! Figure 9: basic-block-level profile errors for LCI, NCI, TIP-ILP, TIP.
//!
//! Usage: `fig09 [test|small|full]` (default: small).

use tip_bench::experiments::{class_mean_errors, error_rows, mean_errors, run_suite_with};
use tip_bench::table::{pct, Table};
use tip_bench::DEFAULT_INTERVAL;
use tip_core::{ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_workloads::{SuiteScale, WorkloadClass};

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    let profilers = [
        ProfilerId::Lci,
        ProfilerId::Nci,
        ProfilerId::TipIlp,
        ProfilerId::Tip,
    ];
    eprintln!("running the suite...");
    let runs = run_suite_with(
        scale_from_args(),
        SamplerConfig::periodic(DEFAULT_INTERVAL),
        &profilers,
    )
    .unwrap_or_else(|e| {
        eprintln!("fig09: {e}");
        std::process::exit(1);
    });
    let rows = error_rows(&runs, Granularity::BasicBlock, &profilers);

    let mut t = Table::new(["benchmark", "class", "LCI", "NCI", "TIP-ILP", "TIP"]);
    for r in &rows {
        let mut cells = vec![r.name.to_owned(), r.class.to_string()];
        cells.extend(r.errors.iter().map(|&(_, e)| pct(e)));
        t.row(cells);
    }
    for class in [
        WorkloadClass::Compute,
        WorkloadClass::Flush,
        WorkloadClass::Stall,
    ] {
        let m = class_mean_errors(&rows, class, &profilers);
        let mut cells = vec![format!("[{class} mean]"), String::new()];
        cells.extend(m.iter().map(|&(_, e)| pct(e)));
        t.row(cells);
    }
    let m = mean_errors(&rows, &profilers);
    let mut cells = vec!["[average]".to_owned(), String::new()];
    cells.extend(m.iter().map(|&(_, e)| pct(e)));
    t.row(cells);
    println!(
        "Figure 9: basic-block-level profile error\n(paper avgs: LCI 11.9%, NCI 2.3%, TIP-ILP 1.2%, TIP 0.7%)\n"
    );
    print!("{}", t.render());
}
