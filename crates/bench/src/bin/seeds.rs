//! Seed sensitivity: the headline instruction-level errors (Figure 10)
//! across several simulation seeds and sampling phases, reported as
//! mean ± standard deviation. Not a paper figure — added rigor for the
//! reproduction (one seed could flatter a profiler).
//!
//! Usage: `seeds [test|small|full] [n_seeds]` (defaults: small, 5).

use tip_bench::experiments::{error_rows, SuiteRun};
use tip_bench::run::run_profiled;
use tip_bench::DEFAULT_INTERVAL;
use tip_core::{ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_ooo::CoreConfig;
use tip_workloads::{suite, SuiteScale};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale = match args.next().as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    };
    let n_seeds: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(5);
    let profilers = [ProfilerId::Nci, ProfilerId::TipIlp, ProfilerId::Tip];

    let mut per_profiler: Vec<Vec<f64>> = vec![Vec::new(); profilers.len()];
    for seed in 0..n_seeds {
        eprintln!("seed {seed}...");
        let runs: Vec<SuiteRun> = suite(scale)
            .into_iter()
            .map(|bench| {
                let run = run_profiled(
                    &bench.program,
                    CoreConfig::default(),
                    // Vary the sampling phase with the seed too.
                    SamplerConfig::random(DEFAULT_INTERVAL, 0x5eed + seed),
                    &profilers,
                    1000 + seed,
                )
                .unwrap_or_else(|e| {
                    eprintln!("seeds: {e}");
                    std::process::exit(1);
                });
                SuiteRun { bench, run }
            })
            .collect();
        let rows = error_rows(&runs, Granularity::Instruction, &profilers);
        for (i, &p) in profilers.iter().enumerate() {
            let mean: f64 = rows
                .iter()
                .map(|r| r.errors.iter().find(|(id, _)| *id == p).expect("present").1)
                .sum::<f64>()
                / rows.len() as f64;
            per_profiler[i].push(mean);
        }
    }

    println!("Instruction-level error across {n_seeds} seeds ({scale:?} scale, random sampling)\n");
    for (i, p) in profilers.iter().enumerate() {
        let xs = &per_profiler[i];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        println!(
            "{:<8}  {:>5.1}% ± {:>4.2}%   (per-seed: {})",
            p.label(),
            100.0 * mean,
            100.0 * var.sqrt(),
            xs.iter()
                .map(|x| format!("{:.1}%", 100.0 * x))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}
