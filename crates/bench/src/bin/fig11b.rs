//! Figure 11b: periodic vs random sampling for TIP, per benchmark.
//!
//! Usage: `fig11b [test|small|full]` (default: small).

use tip_bench::experiments::fig11b;
use tip_bench::table::{pct, Table};
use tip_workloads::SuiteScale;

fn scale_from_args() -> SuiteScale {
    match std::env::args().nth(1).as_deref() {
        Some("test") => SuiteScale::Test,
        Some("full") => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

fn main() {
    eprintln!("running the suite twice (periodic, random)...");
    let rows = fig11b(scale_from_args()).unwrap_or_else(|e| {
        eprintln!("fig11b: {e}");
        std::process::exit(1);
    });
    let mut t = Table::new(["benchmark", "class", "periodic", "random"]);
    let (mut sp, mut sr) = (0.0, 0.0);
    let n = rows.len() as f64;
    for r in &rows {
        sp += r.periodic;
        sr += r.random;
        t.row([
            r.name.to_owned(),
            r.class.to_string(),
            pct(r.periodic),
            pct(r.random),
        ]);
    }
    t.row([
        "[average]".to_owned(),
        String::new(),
        pct(sp / n),
        pct(sr / n),
    ]);
    println!("Figure 11b: TIP instruction-level error, periodic vs random sampling\n(paper: 1.6% periodic vs 1.1% random on average)\n");
    print!("{}", t.render());
}
