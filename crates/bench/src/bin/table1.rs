//! Table 1: the simulated configuration.

use tip_ooo::CoreConfig;

fn main() {
    let c = CoreConfig::default();
    println!("Table 1: simulated configuration ({})\n", c.name);
    println!("Core      4-wide OoO @ {} GHz", c.clock_ghz);
    println!(
        "Front-end {}-wide fetch, {}-entry fetch buffer, {}-wide decode, \
         per-branch local-history predictor + 32-entry RAS (paper: 28KB TAGE), max {} outstanding branches",
        c.fetch_width, c.fetch_buffer, c.decode_width, c.max_branches
    );
    println!(
        "Execute   {}-entry ROB ({} banks), {} int / {} fp physical registers,",
        c.rob_entries, c.commit_width, c.int_phys_regs, c.fp_phys_regs
    );
    println!(
        "          {}-entry {}-issue MEM queue, {}-entry {}-issue INT queue, {}-entry {}-issue FP queue",
        c.mem_iq.entries, c.mem_iq.width, c.int_iq.entries, c.int_iq.width, c.fp_iq.entries, c.fp_iq.width
    );
    println!(
        "LSU       {}-entry load/store queue, {}-entry store buffer",
        c.lsq_entries, c.store_buffer
    );
    let m = &c.mem;
    println!(
        "L1        {} KB {}-way I-cache, {} KB {}-way D-cache w/ {} MSHRs, next-line prefetch: {}",
        m.l1i.size_bytes / 1024,
        m.l1i.ways,
        m.l1d.size_bytes / 1024,
        m.l1d.ways,
        m.l1d.mshrs,
        m.l1d.next_line_prefetch
    );
    println!(
        "L2/LLC    {} KB {}-way L2 w/ {} MSHRs, {} MB {}-way LLC w/ {} MSHRs",
        m.l2.size_bytes / 1024,
        m.l2.ways,
        m.l2.mshrs,
        m.llc.size_bytes / (1024 * 1024),
        m.llc.ways,
        m.llc.mshrs
    );
    println!(
        "TLB       PTW ({} cycles), {}-entry L1 D-TLB, {}-entry L1 I-TLB, {}-entry L2 TLB",
        m.ptw_latency, m.dtlb.entries, m.itlb.entries, m.l2_tlb.entries
    );
    println!(
        "Memory    {} cycles access latency, {} cycles per 64 B line (25.6 GB/s at 3.2 GHz)",
        m.dram.access_latency, m.dram.transfer_cycles
    );
}
