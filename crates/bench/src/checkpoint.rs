//! Mid-run checkpointing: periodic `TIPS` snapshots and crash-safe resume.
//!
//! A checkpointed run simulates in slices of [`CheckpointSpec::every_cycles`]
//! cycles. At each slice boundary it seals the trace file and atomically
//! persists a `TIPS` container (see [`tip_trace::snapshot`]) holding the
//! core's full mid-flight state, the profiler bank's accumulators, and the
//! trace writer's resume position. If the process dies, re-running with
//! [`CheckpointSpec::resume`] restores the last checkpoint, truncates the
//! trace file back to its recorded frame boundary (discarding any torn
//! tail), and continues — producing a commit trace and final profiles
//! **bit-identical** to an uninterrupted run with the same seed.
//!
//! Damage to a checkpoint is never restored silently: a corrupt, truncated,
//! or stale-version snapshot surfaces as [`RunError::Checkpoint`] with the
//! classified [`TraceError`], and the poisoned file is removed so the
//! campaign's bounded retry falls back to a from-scratch run.
//!
//! All files are written via temp-file + atomic rename, with the file and
//! its directory fsynced, so a crash can never leave a half-written
//! checkpoint or result masquerading as a complete one.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::run::{ProfiledRun, RunError, StreamObserver, MAX_CYCLES};
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::{Granularity, Program};
use tip_ooo::{Core, CoreConfig, CycleRecord, RunExit, SimError, TraceSink};
use tip_trace::{
    read_snapshot, write_snapshot, TraceError, TracePos, TraceWriter, SECTION_CORE,
    SECTION_PROFILERS, SECTION_TRACE_POS,
};

/// Where and how often a checkpointed run persists its state.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Path of the `TIPS` snapshot file (conventionally `<bench>.tips`).
    pub snapshot_path: PathBuf,
    /// Path of the framed trace file the run writes and, on resume, extends.
    pub trace_path: PathBuf,
    /// Simulated cycles between checkpoints.
    pub every_cycles: u64,
    /// Whether to restore an existing snapshot instead of starting fresh.
    pub resume: bool,
}

/// The decoded contents of a checkpoint file.
#[derive(Debug, Clone)]
pub struct LoadedCheckpoint {
    /// Simulated cycle at which the checkpoint was taken.
    pub cycle: u64,
    /// The core's serialized state (`tip_ooo::Core::snapshot`).
    pub core: Vec<u8>,
    /// The profiler bank's serialized state (`tip_core::ProfilerBank::snapshot`).
    pub bank: Vec<u8>,
    /// The trace writer's resume position.
    pub trace: TracePos,
}

/// Writes `bytes` to `path` crash-consistently: temp file in the same
/// directory, fsync, atomic rename, fsync of the directory. A reader (or a
/// restart) sees either the old content or the new — never a torn mix.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::other("atomic_write: path has no file name"))?;
    let tmp = dir.join(format!(".{}.tmp", name.to_string_lossy()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    fsync_dir(&dir)
}

/// Makes a rename in `dir` durable by fsyncing the directory itself.
/// Best-effort on platforms where directories cannot be opened.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Atomically persists a checkpoint: core state, bank state, and the trace
/// position, wrapped in a CRC-framed `TIPS` container.
///
/// # Errors
///
/// Any I/O error from the atomic write.
pub fn save_checkpoint(
    path: &Path,
    cycle: u64,
    core: &[u8],
    bank: &[u8],
    trace: TracePos,
) -> io::Result<()> {
    let pos = trace.encode();
    let bytes = write_snapshot(
        cycle,
        &[
            (SECTION_CORE, core),
            (SECTION_PROFILERS, bank),
            (SECTION_TRACE_POS, pos.as_slice()),
        ],
    );
    atomic_write(path, &bytes)
}

/// Reads and CRC-verifies a checkpoint file.
///
/// # Errors
///
/// A classified [`TraceError`]: `Io` when the file cannot be read,
/// `BadMagic`/`UnsupportedVersion` for a foreign or stale container,
/// `Corrupt`/`Truncated` for damaged bytes, and `Malformed` when a required
/// section is missing or inconsistent.
pub fn load_checkpoint(path: &Path) -> Result<LoadedCheckpoint, TraceError> {
    let bytes = fs::read(path)?;
    let snap = read_snapshot(&bytes)?;
    let section = |tag: u8, what: &'static str| {
        snap.section(tag)
            .ok_or(TraceError::Malformed(what))
            .map(<[u8]>::to_vec)
    };
    let core = section(SECTION_CORE, "checkpoint missing the core section")?;
    let bank = section(SECTION_PROFILERS, "checkpoint missing the profiler section")?;
    let pos = section(SECTION_TRACE_POS, "checkpoint missing the trace position")?;
    Ok(LoadedCheckpoint {
        cycle: snap.cycle,
        core,
        bank,
        trace: TracePos::decode(&pos)?,
    })
}

/// Forwards every record to both sinks (trace writer and profiler bank).
struct Tee<'a, A, B>(&'a mut A, &'a mut B);

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<'_, A, B> {
    fn on_cycle(&mut self, record: &CycleRecord) {
        self.0.on_cycle(record);
        self.1.on_cycle(record);
    }
}

/// Opens the trace file for a resumed run: verifies it still covers the
/// checkpointed prefix, truncates any torn tail past the last sealed chunk,
/// and positions the cursor for appending.
fn reopen_trace(path: &Path, pos: TracePos) -> Result<File, TraceError> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let len = file.metadata()?.len();
    if len < pos.framed_bytes {
        // The file lost bytes the checkpoint relies on (e.g. never made it
        // to disk before power loss): the prefix cannot be trusted.
        return Err(TraceError::Truncated {
            last_good_cycle: None,
        });
    }
    file.set_len(pos.framed_bytes)?;
    file.seek(SeekFrom::Start(pos.framed_bytes))?;
    Ok(file)
}

/// Builds the (core, bank, writer) triple, either fresh or from a snapshot.
#[allow(clippy::type_complexity)]
fn build_state<'p>(
    program: &'p Program,
    config: CoreConfig,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
    seed: u64,
    spec: &CheckpointSpec,
) -> Result<(Core<'p>, ProfilerBank, TraceWriter<File>), TraceError> {
    if spec.resume && spec.snapshot_path.exists() {
        let ckpt = load_checkpoint(&spec.snapshot_path)?;
        let core = Core::restore(program, config, &ckpt.core)?;
        let bank = ProfilerBank::restore(program, sampler, &ckpt.bank)?;
        let file = reopen_trace(&spec.trace_path, ckpt.trace)?;
        Ok((core, bank, TraceWriter::resume(file, ckpt.trace)))
    } else {
        if !spec.resume {
            // A fresh run must not pick up a stale snapshot later.
            let _ = fs::remove_file(&spec.snapshot_path);
        }
        if let Some(dir) = spec.trace_path.parent() {
            fs::create_dir_all(dir)?;
        }
        let core = Core::new(program, config, seed);
        let bank = ProfilerBank::new(program, sampler, profilers);
        let file = File::create(&spec.trace_path)?;
        Ok((core, bank, TraceWriter::new(file)))
    }
}

/// Runs `program` under the profiler bank like [`crate::run::run_profiled`],
/// but in checkpointed slices: the commit trace streams to
/// [`CheckpointSpec::trace_path`] and a restorable snapshot lands at
/// [`CheckpointSpec::snapshot_path`] every
/// [`CheckpointSpec::every_cycles`] cycles. On success the snapshot is
/// consumed (removed); the trace file remains as a run artifact.
///
/// # Errors
///
/// [`RunError::Sim`] for livelocks and exhausted cycle budgets (as in the
/// plain runner), and [`RunError::Checkpoint`] when a snapshot cannot be
/// written or an existing one fails to restore — the poisoned snapshot is
/// removed first, so a retry starts from scratch instead of hitting the
/// same damage again.
pub fn run_profiled_checkpointed(
    program: &Program,
    config: CoreConfig,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
    seed: u64,
    spec: &CheckpointSpec,
) -> Result<ProfiledRun, RunError> {
    run_profiled_checkpointed_budgeted(program, config, sampler, profilers, seed, spec, MAX_CYCLES)
}

/// [`run_profiled_checkpointed`] with an explicit cycle budget instead of
/// the harness default [`MAX_CYCLES`].
///
/// # Errors
///
/// As [`run_profiled_checkpointed`]; budget exhaustion surfaces as the
/// dedicated [`tip_ooo::SimError::CycleLimit`] variant.
pub fn run_profiled_checkpointed_budgeted(
    program: &Program,
    config: CoreConfig,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
    seed: u64,
    spec: &CheckpointSpec,
    max_cycles: u64,
) -> Result<ProfiledRun, RunError> {
    run_profiled_checkpointed_streaming(
        program, config, sampler, profilers, seed, spec, max_cycles, None,
    )
}

/// [`run_profiled_checkpointed_budgeted`] with an optional streaming
/// observer: profile deltas are flushed at every checkpoint boundary (the
/// natural slice points a checkpointed run already has — the observer's
/// [`StreamObserver::every_cycles`] is ignored here) and once at
/// completion. Flushing happens **before** the bank snapshot is taken, and
/// the bank's streaming state is deliberately not serialized, so checkpoint
/// bytes and resume behaviour are identical with streaming on or off; after
/// a restore the flush sequence restarts at 1 and the first flush
/// re-reports the full cumulative units (aggregators reset on that signal).
///
/// # Errors
///
/// As [`run_profiled_checkpointed_budgeted`].
#[allow(clippy::too_many_arguments)]
pub fn run_profiled_checkpointed_streaming(
    program: &Program,
    config: CoreConfig,
    sampler: SamplerConfig,
    profilers: &[ProfilerId],
    seed: u64,
    spec: &CheckpointSpec,
    max_cycles: u64,
    stream: Option<StreamObserver<'_>>,
) -> Result<ProfiledRun, RunError> {
    let bench = program.name().to_owned();
    let map = stream
        .as_ref()
        .map(|_| program.symbol_map(Granularity::Function));
    let ckpt_err = |bench: &str, source: TraceError| RunError::Checkpoint {
        bench: bench.to_owned(),
        source,
    };

    let (mut core, mut bank, mut writer) =
        match build_state(program, config, sampler, profilers, seed, spec) {
            Ok(state) => state,
            Err(source) => {
                // Classified rejection: drop the unusable snapshot so the
                // campaign's reseeded retry runs from scratch.
                let _ = fs::remove_file(&spec.snapshot_path);
                return Err(ckpt_err(&bench, source));
            }
        };

    let every = spec.every_cycles.max(1);
    loop {
        let next_stop = core.stats().cycles.saturating_add(every).min(max_cycles);
        let summary = {
            let mut tee = Tee(&mut writer, &mut bank);
            core.run(&mut tee, next_stop)
        };
        if let (Some(observer), Some(map)) = (&stream, &map) {
            // Before the snapshot below: the flush advances only the bank's
            // unserialized streaming watermarks, so checkpoint bytes stay
            // identical with streaming on or off.
            (observer.observe)(bank.flush_deltas(map));
        }
        match summary.exit {
            RunExit::Halted | RunExit::StreamEnd => {
                writer
                    .flush()
                    .map_err(|e| ckpt_err(&bench, TraceError::Io(e)))?;
                // The checkpoint is consumed; a completed run leaves none.
                let _ = fs::remove_file(&spec.snapshot_path);
                let stats = *core.stats();
                let mem_stats = core.mem_stats();
                return Ok(ProfiledRun {
                    bank: bank.finish(),
                    summary,
                    stats,
                    mem_stats,
                });
            }
            RunExit::Stuck(diag) => {
                return Err(RunError::Sim {
                    bench,
                    source: SimError::Livelock(diag),
                });
            }
            RunExit::CycleLimit => {
                if next_stop >= max_cycles {
                    return Err(RunError::Sim {
                        bench,
                        source: SimError::CycleLimit {
                            max_cycles,
                            committed: summary.instructions,
                        },
                    });
                }
                // Slice boundary: seal the trace so its position is a valid
                // resume point, then persist everything atomically.
                writer
                    .flush()
                    .map_err(|e| ckpt_err(&bench, TraceError::Io(e)))?;
                save_checkpoint(
                    &spec.snapshot_path,
                    summary.cycles,
                    &core.snapshot(),
                    &bank.snapshot(),
                    writer.position(),
                )
                .map_err(|e| ckpt_err(&bench, TraceError::Io(e)))?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_core::ProfilerId;
    use tip_trace::{Fault, FaultPlan, TraceReader};
    use tip_workloads::{benchmark, SuiteScale};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tip-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec_in(dir: &Path, every: u64, resume: bool) -> CheckpointSpec {
        CheckpointSpec {
            snapshot_path: dir.join("bench.tips"),
            trace_path: dir.join("bench.trace"),
            every_cycles: every,
            resume,
        }
    }

    #[test]
    fn checkpointed_run_matches_the_plain_runner() {
        let b = benchmark("exchange2", SuiteScale::Test);
        let sampler = SamplerConfig::periodic(211);
        let profilers = [ProfilerId::Tip, ProfilerId::Nci];
        let plain =
            crate::run::run_profiled(&b.program, CoreConfig::default(), sampler, &profilers, 5)
                .expect("plain run");

        let dir = tmp_dir("plain-eq");
        let spec = spec_in(&dir, 2_003, false);
        let ckpt = run_profiled_checkpointed(
            &b.program,
            CoreConfig::default(),
            sampler,
            &profilers,
            5,
            &spec,
        )
        .expect("checkpointed run");

        assert_eq!(ckpt.summary, plain.summary);
        assert_eq!(ckpt.stats, plain.stats);
        assert_eq!(ckpt.bank.total_cycles, plain.bank.total_cycles);
        for p in profilers {
            assert_eq!(ckpt.bank.samples_of(p), plain.bank.samples_of(p));
        }
        // The trace file decodes to exactly the run's cycles, and the
        // consumed snapshot is gone.
        let file = File::open(&spec.trace_path).expect("trace file");
        let n = TraceReader::new(file)
            .collect::<Result<Vec<_>, _>>()
            .expect("decodes")
            .len() as u64;
        assert_eq!(n, ckpt.summary.cycles);
        assert!(!spec.snapshot_path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("x.tips");
        let pos = TracePos {
            framed_bytes: 100,
            records: 7,
            payload_bytes: 60,
        };
        save_checkpoint(&path, 1_234, b"core", b"bank", pos).expect("save");
        let back = load_checkpoint(&path).expect("load");
        assert_eq!(back.cycle, 1_234);
        assert_eq!(back.core, b"core");
        assert_eq!(back.bank, b"bank");
        assert_eq!(back.trace, pos);
        // No temp file left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_checkpoints_are_classified_and_removed() {
        let b = benchmark("exchange2", SuiteScale::Test);
        let sampler = SamplerConfig::periodic(211);
        let profilers = [ProfilerId::Tip];

        let plans = [
            (
                "flip",
                FaultPlan::new(3, vec![Fault::FlipBits { bits: 64 }]),
            ),
            (
                "truncate",
                FaultPlan::new(4, vec![Fault::Truncate { keep_fraction: 0.4 }]),
            ),
            ("stale", FaultPlan::new(5, vec![Fault::StaleSnapshotHeader])),
        ];
        for (tag, plan) in plans {
            let dir = tmp_dir(&format!("damage-{tag}"));
            // Produce a real interrupted state, then damage the snapshot.
            let spec = spec_in(&dir, 1_000, false);
            {
                let (mut core, mut bank, mut writer) = build_state(
                    &b.program,
                    CoreConfig::default(),
                    sampler,
                    &profilers,
                    9,
                    &spec,
                )
                .expect("fresh state");
                let mut tee = Tee(&mut writer, &mut bank);
                core.run(&mut tee, 1_000);
                writer.flush().expect("flush");
                save_checkpoint(
                    &spec.snapshot_path,
                    1_000,
                    &core.snapshot(),
                    &bank.snapshot(),
                    writer.position(),
                )
                .expect("save");
            }
            let mut bytes = fs::read(&spec.snapshot_path).expect("read");
            plan.apply_snapshot(&mut bytes);
            fs::write(&spec.snapshot_path, &bytes).expect("write damage");

            let resume = CheckpointSpec {
                resume: true,
                ..spec.clone()
            };
            let err = run_profiled_checkpointed(
                &b.program,
                CoreConfig::default(),
                sampler,
                &profilers,
                9,
                &resume,
            )
            .expect_err("damaged snapshot must not restore");
            assert!(
                matches!(err, RunError::Checkpoint { .. }),
                "{tag}: got {err:?}"
            );
            assert!(
                !spec.snapshot_path.exists(),
                "{tag}: poisoned snapshot not removed"
            );
            // The retry path: with the poison gone, the same invocation
            // completes from scratch.
            run_profiled_checkpointed(
                &b.program,
                CoreConfig::default(),
                sampler,
                &profilers,
                9,
                &resume,
            )
            .expect("from-scratch fallback");
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
