//! Fault-tolerant experiment campaigns.
//!
//! A figure-style sweep over the suite dies entirely if one workload
//! panics or livelocks — hours of completed runs lost with it. This module
//! isolates each benchmark behind [`std::panic::catch_unwind`], retries
//! failed runs a bounded number of times with a reseeded core, and persists
//! every per-benchmark result to disk *as it completes*, so a campaign
//! always finishes with whatever subset succeeded plus a failure report.
//!
//! The runner is a closure, so tests and the `chaos` binary can substitute
//! one that injects faults ([`tip_trace::FaultPlan`]-driven panics, wedged
//! cores) without the production path knowing about fault injection.
//!
//! ```no_run
//! use tip_bench::campaign::{run_suite_campaign, CampaignConfig};
//! use tip_workloads::SuiteScale;
//!
//! let outcome = run_suite_campaign(SuiteScale::Test, &CampaignConfig::default());
//! println!("{}", outcome.summary());
//! assert!(outcome.failed.is_empty());
//! ```

use std::any::Any;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::experiments::SuiteRun;
use crate::run::{run_profiled, ProfiledRun, RunError, DEFAULT_INTERVAL};
use tip_core::{ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_ooo::CoreConfig;
use tip_workloads::{suite, Benchmark, SuiteScale};

/// How a campaign runs its benchmarks.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base seed; attempt `k` of a benchmark runs with `seed + k`.
    pub seed: u64,
    /// Attempts per benchmark before it is written off as failed (≥ 1).
    pub max_attempts: u32,
    /// Sampling schedule for every run.
    pub sampler: SamplerConfig,
    /// Profilers attached to every run.
    pub profilers: Vec<ProfilerId>,
    /// If set, per-benchmark results and the failure report are persisted
    /// here incrementally (one `<bench>.result` file each, plus
    /// `failures.txt`).
    pub out_dir: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            max_attempts: 2,
            sampler: SamplerConfig::periodic(DEFAULT_INTERVAL),
            profilers: ProfilerId::ALL.to_vec(),
            out_dir: None,
        }
    }
}

/// A benchmark that produced a profile (possibly after retries).
#[derive(Debug)]
pub struct CompletedBench {
    /// The benchmark and its profiled run, table-ready.
    pub run: SuiteRun,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// A benchmark that failed every attempt.
#[derive(Debug)]
pub struct FailedBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Attempts made.
    pub attempts: u32,
    /// The error of the final attempt.
    pub error: RunError,
}

/// Everything a campaign produced.
#[derive(Debug, Default)]
pub struct CampaignOutcome {
    /// Benchmarks that completed, in suite order.
    pub completed: Vec<CompletedBench>,
    /// Benchmarks that failed every attempt, in suite order.
    pub failed: Vec<FailedBench>,
}

impl CampaignOutcome {
    /// The completed runs as plain [`SuiteRun`]s for the figure helpers
    /// ([`crate::experiments::error_rows`] and friends).
    #[must_use]
    pub fn runs(&self) -> Vec<&SuiteRun> {
        self.completed.iter().map(|c| &c.run).collect()
    }

    /// Splits the outcome into table-ready runs and the failures.
    #[must_use]
    pub fn into_parts(self) -> (Vec<SuiteRun>, Vec<FailedBench>) {
        (
            self.completed.into_iter().map(|c| c.run).collect(),
            self.failed,
        )
    }

    /// Human-readable one-screen summary, including the failure report.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "campaign: {} completed, {} failed",
            self.completed.len(),
            self.failed.len()
        );
        for c in &self.completed {
            if c.attempts > 1 {
                let _ = writeln!(
                    s,
                    "  {}: ok after {} attempts",
                    c.run.bench.name, c.attempts
                );
            }
        }
        for f in &self.failed {
            let _ = writeln!(
                s,
                "  {}: FAILED after {} attempts: {}",
                f.name,
                f.attempts,
                one_line(&f.error.to_string())
            );
        }
        s
    }
}

/// Runs `benches` through `runner` with per-benchmark panic isolation,
/// bounded reseeded retries, and (if configured) incremental persistence.
///
/// `runner` gets the benchmark and the attempt's seed; a panic inside it is
/// caught and converted to [`RunError::Panicked`]. I/O errors from the
/// persistence directory are reported to stderr but never abort the sweep —
/// losing a result file must not lose the campaign.
pub fn run_campaign<F>(
    benches: Vec<Benchmark>,
    config: &CampaignConfig,
    mut runner: F,
) -> CampaignOutcome
where
    F: FnMut(&Benchmark, u64) -> Result<ProfiledRun, RunError>,
{
    let mut outcome = CampaignOutcome::default();
    for bench in benches {
        let mut last_err: Option<RunError> = None;
        let mut done: Option<ProfiledRun> = None;
        let attempts_cap = config.max_attempts.max(1);
        let mut attempts = 0;
        for attempt in 0..attempts_cap {
            attempts = attempt + 1;
            let seed = config.seed.wrapping_add(u64::from(attempt));
            let caught = panic::catch_unwind(AssertUnwindSafe(|| runner(&bench, seed)));
            match caught {
                Ok(Ok(run)) => {
                    done = Some(run);
                    break;
                }
                Ok(Err(err)) => last_err = Some(err),
                Err(payload) => {
                    last_err = Some(RunError::Panicked {
                        bench: bench.name.to_owned(),
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
        match done {
            Some(run) => {
                let completed = CompletedBench {
                    run: SuiteRun { bench, run },
                    attempts,
                };
                persist_completed(config, &completed);
                outcome.completed.push(completed);
            }
            None => {
                let failed = FailedBench {
                    name: bench.name,
                    attempts,
                    error: last_err.unwrap_or(RunError::Panicked {
                        bench: bench.name.to_owned(),
                        message: "no attempt ran".to_owned(),
                    }),
                };
                persist_failed(config, &failed);
                outcome.failed.push(failed);
            }
        }
        persist_failure_report(config, &outcome);
    }
    outcome
}

/// Runs the whole suite at `scale` under the default profiled runner.
#[must_use]
pub fn run_suite_campaign(scale: SuiteScale, config: &CampaignConfig) -> CampaignOutcome {
    let sampler = config.sampler;
    let profilers = config.profilers.clone();
    run_campaign(suite(scale), config, move |bench, seed| {
        run_profiled(
            &bench.program,
            CoreConfig::default(),
            sampler,
            &profilers,
            seed,
        )
    })
}

/// Best-effort string form of a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Collapses a multi-line error (e.g. a livelock pipeline dump) to one line
/// for the key=value result files.
fn one_line(s: &str) -> String {
    s.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join(" | ")
}

fn persist_completed(config: &CampaignConfig, c: &CompletedBench) {
    let Some(dir) = &config.out_dir else { return };
    let mut body = String::new();
    let _ = writeln!(body, "status=ok");
    let _ = writeln!(body, "bench={}", c.run.bench.name);
    let _ = writeln!(body, "attempts={}", c.attempts);
    let _ = writeln!(body, "cycles={}", c.run.run.summary.cycles);
    let _ = writeln!(body, "instructions={}", c.run.run.summary.instructions);
    let _ = writeln!(body, "ipc={:.6}", c.run.run.ipc());
    for &p in &config.profilers {
        let err = c
            .run
            .run
            .bank
            .error_of(&c.run.bench.program, p, Granularity::Instruction);
        let _ = writeln!(body, "error.instr.{p:?}={err:.6}");
    }
    report_io(write_result_file(dir, c.run.bench.name, &body));
}

fn persist_failed(config: &CampaignConfig, f: &FailedBench) {
    let Some(dir) = &config.out_dir else { return };
    let mut body = String::new();
    let _ = writeln!(body, "status=failed");
    let _ = writeln!(body, "bench={}", f.name);
    let _ = writeln!(body, "attempts={}", f.attempts);
    let _ = writeln!(body, "error={}", one_line(&f.error.to_string()));
    report_io(write_result_file(dir, f.name, &body));
}

fn persist_failure_report(config: &CampaignConfig, outcome: &CampaignOutcome) {
    let Some(dir) = &config.out_dir else { return };
    let mut body = String::new();
    let _ = writeln!(
        body,
        "completed={} failed={}",
        outcome.completed.len(),
        outcome.failed.len()
    );
    for f in &outcome.failed {
        let _ = writeln!(
            body,
            "{} attempts={} {}",
            f.name,
            f.attempts,
            one_line(&f.error.to_string())
        );
    }
    report_io(fs::create_dir_all(dir).and_then(|()| fs::write(dir.join("failures.txt"), body)));
}

fn write_result_file(dir: &Path, bench: &str, body: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{bench}.result")), body)
}

fn report_io(res: io::Result<()>) {
    if let Err(e) = res {
        eprintln!("campaign: failed to persist result: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_workloads::BENCHMARK_NAMES;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tip-campaign-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn healthy_campaign_completes_everything() {
        let config = CampaignConfig {
            profilers: vec![ProfilerId::Tip],
            sampler: SamplerConfig::periodic(211),
            ..CampaignConfig::default()
        };
        let outcome = run_suite_campaign(SuiteScale::Test, &config);
        assert_eq!(outcome.completed.len(), BENCHMARK_NAMES.len());
        assert!(outcome.failed.is_empty());
        assert!(outcome.completed.iter().all(|c| c.attempts == 1));
    }

    #[test]
    fn panicking_benchmark_is_isolated_and_reported() {
        let dir = tmp_dir("panic");
        let config = CampaignConfig {
            profilers: vec![ProfilerId::Tip],
            sampler: SamplerConfig::periodic(211),
            max_attempts: 3,
            out_dir: Some(dir.clone()),
            ..CampaignConfig::default()
        };
        let sampler = config.sampler;
        let profilers = config.profilers.clone();
        let outcome = run_campaign(suite(SuiteScale::Test), &config, move |bench, seed| {
            assert!(bench.name != "mcf", "injected fault in mcf");
            run_profiled(
                &bench.program,
                CoreConfig::default(),
                sampler,
                &profilers,
                seed,
            )
        });
        assert_eq!(outcome.completed.len(), BENCHMARK_NAMES.len() - 1);
        assert_eq!(outcome.failed.len(), 1);
        let f = &outcome.failed[0];
        assert_eq!(f.name, "mcf");
        assert_eq!(f.attempts, 3);
        assert!(matches!(f.error, RunError::Panicked { .. }));
        assert!(f.error.to_string().contains("injected fault"));

        // Incremental persistence: every benchmark has a result file and
        // the failure report names the casualty.
        for name in BENCHMARK_NAMES {
            let path = dir.join(format!("{name}.result"));
            let body = fs::read_to_string(&path).expect("result file exists");
            if name == "mcf" {
                assert!(body.contains("status=failed"));
            } else {
                assert!(body.contains("status=ok"));
                assert!(body.contains("error.instr.Tip="));
            }
        }
        let report = fs::read_to_string(dir.join("failures.txt")).expect("report");
        assert!(report.contains("mcf"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flaky_benchmark_succeeds_on_retry_with_new_seed() {
        let config = CampaignConfig {
            profilers: vec![ProfilerId::Tip],
            sampler: SamplerConfig::periodic(211),
            max_attempts: 3,
            seed: 7,
            ..CampaignConfig::default()
        };
        let sampler = config.sampler;
        let profilers = config.profilers.clone();
        let outcome = run_campaign(suite(SuiteScale::Test), &config, move |bench, seed| {
            // First attempt (seed 7) fails for lbm; the reseeded retry works.
            if bench.name == "lbm" && seed == 7 {
                panic!("transient fault");
            }
            run_profiled(
                &bench.program,
                CoreConfig::default(),
                sampler,
                &profilers,
                seed,
            )
        });
        assert!(outcome.failed.is_empty());
        let lbm = outcome
            .completed
            .iter()
            .find(|c| c.run.bench.name == "lbm")
            .expect("lbm completed");
        assert_eq!(lbm.attempts, 2);
    }
}
