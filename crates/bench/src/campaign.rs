//! Fault-tolerant, resumable experiment campaigns over the job executor.
//!
//! A figure-style sweep over the suite dies entirely if one workload
//! panics or livelocks — hours of completed runs lost with it. This module
//! turns each benchmark into a [`Job`](crate::executor::Job), fans the jobs
//! out over the [`crate::executor`] worker pool (`--jobs N`), retries
//! failed runs a bounded number of times with a reseeded core, and persists
//! every per-benchmark result to disk *as it settles*, so a campaign always
//! finishes with whatever subset succeeded plus a failure report.
//!
//! Parallelism never changes the outputs: the executor's committer applies
//! results in canonical suite order through the shared campaign
//! [`Ledger`](crate::ledger::Ledger), so `journal.txt`, `failures.txt`, and
//! every `<bench>.result` file are **byte-identical** at any worker count.
//! Host timing lands only in `metrics.txt` (per-job wall-clock, queue wait,
//! cycles, IPC, and the campaign speedup), which is the one deliberately
//! non-deterministic artifact. The same ledger backs the `tip-serve`
//! daemon, which is how remote submission inherits the identical bytes.
//!
//! Campaigns are also **crash-consistent and resumable**: every result file
//! and the `journal.txt` ledger are written via temp-file + atomic rename
//! (directory fsynced), so a `SIGKILL` can never leave a torn file. With
//! [`CampaignConfig::checkpoint_cycles`] set, each benchmark additionally
//! writes a restorable mid-run snapshot every N simulated cycles (see
//! [`crate::checkpoint`]). Re-invoking a killed campaign with
//! [`CampaignConfig::resume`] scans the journal, re-enqueues only the
//! incomplete jobs, and restores an interrupted benchmark from its last
//! checkpoint, continuing bit-identically.
//!
//! The runner is a [`Runner`] value (closures qualify), so tests and the
//! `chaos` binary can substitute one that injects faults
//! ([`tip_trace::FaultPlan`]-driven panics, wedged cores, damaged
//! snapshots) without the production path knowing about fault injection.
//!
//! ```no_run
//! use tip_bench::campaign::{run_suite_campaign, CampaignConfig};
//! use tip_workloads::SuiteScale;
//!
//! let outcome = run_suite_campaign(SuiteScale::Test, &CampaignConfig::default());
//! println!("{}", outcome.summary());
//! assert!(outcome.failed.is_empty());
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use crate::checkpoint::CheckpointSpec;
use crate::executor::{self, default_workers, Job, Runner, SpecRunner};
use crate::experiments::SuiteRun;
use crate::ledger::{one_line, Ledger};
use crate::live::{DeltaSink, LiveAggregate};
use crate::run::{RunError, DEFAULT_INTERVAL, MAX_CYCLES};
use tip_core::{ProfilerId, SamplerConfig};
use tip_ooo::CoreConfig;
use tip_workloads::{suite, Benchmark, SuiteScale};

pub use crate::executor::RunCtx;

/// How a campaign runs its benchmarks.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base seed; attempt `k` of a benchmark runs with `seed + k`.
    pub seed: u64,
    /// Attempts per benchmark before it is written off as failed (≥ 1).
    pub max_attempts: u32,
    /// Sampling schedule for every run.
    pub sampler: SamplerConfig,
    /// Profilers attached to every run.
    pub profilers: Vec<ProfilerId>,
    /// Worker threads for the job executor (≥ 1; capped by the number of
    /// jobs). `1` runs serially; any value produces byte-identical
    /// journal/result/profile outputs.
    pub jobs: usize,
    /// If set, per-benchmark results and the failure report are persisted
    /// here incrementally (one `<bench>.result` file each, plus
    /// `failures.txt`, the `journal.txt` resume ledger, and the campaign
    /// `metrics.txt`), all via temp-file + atomic rename.
    pub out_dir: Option<PathBuf>,
    /// If set (and [`Self::out_dir`] is set), each benchmark writes a
    /// restorable `TIPS` snapshot every this many simulated cycles, plus
    /// its framed commit trace (`<bench>.tips` / `<bench>.trace`).
    pub checkpoint_cycles: Option<u64>,
    /// Resume a previous campaign in [`Self::out_dir`]: benchmarks the
    /// journal records as complete are skipped (not re-enqueued), and an
    /// interrupted benchmark restores from its mid-run checkpoint.
    /// Journalled *failures* are retried, not skipped.
    pub resume: bool,
    /// Optional live streaming aggregate: with a handle, every run flushes
    /// mid-run profile deltas into it (see [`crate::live`]) and the
    /// campaign marks benchmarks settled as they commit. Pure observation —
    /// all deterministic artifacts are byte-identical with or without it.
    pub live: Option<Arc<LiveAggregate>>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            max_attempts: 2,
            sampler: SamplerConfig::periodic(DEFAULT_INTERVAL),
            profilers: ProfilerId::ALL.to_vec(),
            jobs: 1,
            out_dir: None,
            checkpoint_cycles: None,
            resume: false,
            live: None,
        }
    }
}

impl CampaignConfig {
    /// The checkpoint spec for one benchmark, when checkpointing is on
    /// (both [`Self::out_dir`] and [`Self::checkpoint_cycles`] set).
    #[must_use]
    pub fn checkpoint_spec(&self, bench: &str) -> Option<CheckpointSpec> {
        let dir = self.out_dir.as_ref()?;
        let every_cycles = self.checkpoint_cycles?;
        Some(CheckpointSpec {
            snapshot_path: dir.join(format!("{bench}.tips")),
            trace_path: dir.join(format!("{bench}.trace")),
            every_cycles,
            resume: self.resume,
        })
    }

    /// Folds one benchmark into its executable [`Job`] spec.
    #[must_use]
    pub fn job(&self, bench: Benchmark) -> Job {
        let checkpoint = self.checkpoint_spec(bench.name);
        Job {
            bench,
            seed: self.seed,
            core: CoreConfig::default(),
            sampler: self.sampler,
            profilers: self.profilers.clone(),
            checkpoint,
            max_attempts: self.max_attempts,
            max_cycles: MAX_CYCLES,
            pgo: false,
        }
    }
}

/// A benchmark that produced a profile (possibly after retries).
#[derive(Debug)]
pub struct CompletedBench {
    /// The benchmark and its profiled run, table-ready.
    pub run: SuiteRun,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// A benchmark that failed every attempt.
#[derive(Debug)]
pub struct FailedBench {
    /// Benchmark name.
    pub name: &'static str,
    /// Attempts made.
    pub attempts: u32,
    /// The error of the final attempt.
    pub error: RunError,
}

/// Everything a campaign produced.
#[derive(Debug, Default)]
pub struct CampaignOutcome {
    /// Benchmarks that completed, in suite order.
    pub completed: Vec<CompletedBench>,
    /// Benchmarks that failed every attempt, in suite order.
    pub failed: Vec<FailedBench>,
    /// Benchmarks skipped because a resumed journal already records them as
    /// complete; their result files from the earlier invocation remain on
    /// disk untouched.
    pub skipped: Vec<&'static str>,
}

impl CampaignOutcome {
    /// The completed runs as plain [`SuiteRun`]s for the figure helpers
    /// ([`crate::experiments::error_rows`] and friends).
    #[must_use]
    pub fn runs(&self) -> Vec<&SuiteRun> {
        self.completed.iter().map(|c| &c.run).collect()
    }

    /// Splits the outcome into table-ready runs and the failures.
    #[must_use]
    pub fn into_parts(self) -> (Vec<SuiteRun>, Vec<FailedBench>) {
        (
            self.completed.into_iter().map(|c| c.run).collect(),
            self.failed,
        )
    }

    /// Human-readable one-screen summary, including the failure report.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "campaign: {} completed, {} failed{}",
            self.completed.len(),
            self.failed.len(),
            if self.skipped.is_empty() {
                String::new()
            } else {
                format!(", {} skipped (already done)", self.skipped.len())
            }
        );
        for c in &self.completed {
            if c.attempts > 1 {
                let _ = writeln!(
                    s,
                    "  {}: ok after {} attempts",
                    c.run.bench.name, c.attempts
                );
            }
        }
        for f in &self.failed {
            let _ = writeln!(
                s,
                "  {}: FAILED after {} attempts: {}",
                f.name,
                f.attempts,
                one_line(&f.error.to_string())
            );
        }
        s
    }
}

/// Runs `benches` through `runner` on the job executor with per-attempt
/// panic isolation, bounded reseeded retries, and (if configured)
/// crash-consistent incremental persistence plus journal-driven resume.
///
/// Benchmarks the resume journal records as complete are not enqueued at
/// all; the rest become [`Job`]s executed on [`CampaignConfig::jobs`]
/// worker threads. All campaign-level file I/O happens on the calling
/// thread (the executor's committer) in canonical suite order, so the
/// on-disk artifacts are byte-identical regardless of worker count. I/O
/// errors from the persistence directory are reported to stderr but never
/// abort the sweep — losing a result file must not lose the campaign.
pub fn run_campaign<R>(
    benches: Vec<Benchmark>,
    config: &CampaignConfig,
    runner: R,
) -> CampaignOutcome
where
    R: Runner,
{
    let mut outcome = CampaignOutcome::default();
    let mut ledger = Ledger::open(config.out_dir.as_deref(), config.resume);
    let mut jobs = Vec::new();
    for bench in benches {
        if ledger.is_done(bench.name) {
            outcome.skipped.push(bench.name);
            ledger.note_skipped();
        } else {
            jobs.push(config.job(bench));
        }
    }
    let sink = config
        .live
        .as_ref()
        .map_or_else(DeltaSink::noop, LiveAggregate::sink);
    let summary = executor::execute_streaming(&jobs, &runner, config.jobs, &sink, |out| {
        let job = &jobs[out.index];
        let name = job.bench.name;
        if let Some(live) = &config.live {
            live.mark_settled(name, out.result.is_ok());
        }
        match out.result {
            Ok(run) => {
                let completed = CompletedBench {
                    run: SuiteRun {
                        bench: job.bench.clone(),
                        run,
                    },
                    attempts: out.attempts,
                };
                ledger.commit_completed(&completed, out.metrics, &config.profilers);
                outcome.completed.push(completed);
            }
            Err(error) => {
                let failed = FailedBench {
                    name,
                    attempts: out.attempts,
                    error,
                };
                ledger.commit_failed(&failed, out.metrics);
                outcome.failed.push(failed);
            }
        }
    });
    ledger.finish(summary);
    outcome
}

/// Runs the whole suite at `scale` under the production [`SpecRunner`]
/// (checkpointed when [`CampaignConfig::checkpoint_cycles`] is set).
#[must_use]
pub fn run_suite_campaign(scale: SuiteScale, config: &CampaignConfig) -> CampaignOutcome {
    run_campaign(suite(scale), config, SpecRunner)
}

/// Shared command-line parsing for the campaign-driven binaries (`fig08`,
/// `fig10`, `chaos`): `[test|small|full] [out_dir] [--jobs N]
/// [--checkpoint N] [--resume]`.
#[derive(Debug, Clone)]
pub struct CampaignCli {
    /// Suite scale (defaults to `Small`).
    pub scale: SuiteScale,
    /// Persistence directory, when given.
    pub out_dir: Option<PathBuf>,
    /// Worker threads, when `--jobs N` was given (rejects 0); `None` means
    /// use every available core, capped by the job count.
    pub jobs: Option<usize>,
    /// Mid-run checkpoint period, when `--checkpoint N` was given.
    pub checkpoint_cycles: Option<u64>,
    /// Whether `--resume` was given.
    pub resume: bool,
}

impl CampaignCli {
    /// Parses `std::env::args().skip(1)`-style arguments.
    ///
    /// # Errors
    ///
    /// A usage message naming the offending argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        Self::parse_with_default(args, SuiteScale::Small)
    }

    /// [`Self::parse`] with a caller-chosen default scale (the `chaos`
    /// binary defaults to `test`, the figure binaries to `small`).
    ///
    /// # Errors
    ///
    /// A usage message naming the offending argument.
    pub fn parse_with_default(
        args: impl Iterator<Item = String>,
        default_scale: SuiteScale,
    ) -> Result<Self, String> {
        let mut cli = CampaignCli {
            scale: default_scale,
            out_dir: None,
            jobs: None,
            checkpoint_cycles: None,
            resume: false,
        };
        let mut positional = 0;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" => cli.resume = true,
                "--jobs" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--jobs needs a worker count".to_owned())?;
                    let jobs: usize = value
                        .parse()
                        .map_err(|_| format!("--jobs: bad worker count `{value}`"))?;
                    if jobs == 0 {
                        return Err(
                            "--jobs: worker count must be at least 1 (use --jobs 1 to run serially)"
                                .to_owned(),
                        );
                    }
                    cli.jobs = Some(jobs);
                }
                "--checkpoint" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--checkpoint needs a cycle count".to_owned())?;
                    let cycles: u64 = value
                        .parse()
                        .map_err(|_| format!("--checkpoint: bad cycle count `{value}`"))?;
                    if cycles == 0 {
                        return Err("--checkpoint: cycle count must be positive".to_owned());
                    }
                    cli.checkpoint_cycles = Some(cycles);
                }
                _ if positional == 0 => {
                    positional += 1;
                    cli.scale = match arg.as_str() {
                        "test" => SuiteScale::Test,
                        "small" => SuiteScale::Small,
                        "full" => SuiteScale::Full,
                        other => {
                            return Err(format!(
                                "unknown scale `{other}` (expected test, small, or full)"
                            ));
                        }
                    };
                }
                _ if positional == 1 => {
                    positional += 1;
                    cli.out_dir = Some(PathBuf::from(arg));
                }
                other => return Err(format!("unexpected argument `{other}`")),
            }
        }
        if cli.checkpoint_cycles.is_some() && cli.out_dir.is_none() {
            return Err("--checkpoint needs an out_dir to write into".to_owned());
        }
        if cli.resume && cli.out_dir.is_none() {
            return Err("--resume needs the out_dir of the interrupted campaign".to_owned());
        }
        Ok(cli)
    }

    /// The effective worker count: `--jobs N` when given, otherwise every
    /// available core. The executor additionally caps it by the job count.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(default_workers)
    }

    /// Folds the CLI into a campaign config.
    #[must_use]
    pub fn config(&self, profilers: &[ProfilerId]) -> CampaignConfig {
        CampaignConfig {
            profilers: profilers.to_vec(),
            jobs: self.effective_jobs(),
            out_dir: self.out_dir.clone(),
            checkpoint_cycles: self.checkpoint_cycles,
            resume: self.resume,
            ..CampaignConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_profiled;
    use std::fs;
    use std::path::Path;
    use tip_workloads::BENCHMARK_NAMES;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tip-campaign-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn healthy_campaign_completes_everything() {
        let config = CampaignConfig {
            profilers: vec![ProfilerId::Tip],
            sampler: SamplerConfig::periodic(211),
            ..CampaignConfig::default()
        };
        let outcome = run_suite_campaign(SuiteScale::Test, &config);
        assert_eq!(outcome.completed.len(), BENCHMARK_NAMES.len());
        assert!(outcome.failed.is_empty());
        assert!(outcome.completed.iter().all(|c| c.attempts == 1));
    }

    #[test]
    fn panicking_benchmark_is_isolated_and_reported() {
        let dir = tmp_dir("panic");
        let config = CampaignConfig {
            profilers: vec![ProfilerId::Tip],
            sampler: SamplerConfig::periodic(211),
            max_attempts: 3,
            out_dir: Some(dir.clone()),
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(
            suite(SuiteScale::Test),
            &config,
            |job: &Job, ctx: &RunCtx| {
                assert!(job.bench.name != "mcf", "injected fault in mcf");
                run_profiled(
                    &job.bench.program,
                    CoreConfig::default(),
                    job.sampler,
                    &job.profilers,
                    ctx.seed,
                )
            },
        );
        assert_eq!(outcome.completed.len(), BENCHMARK_NAMES.len() - 1);
        assert_eq!(outcome.failed.len(), 1);
        let f = &outcome.failed[0];
        assert_eq!(f.name, "mcf");
        assert_eq!(f.attempts, 3);
        assert!(matches!(f.error, RunError::Panicked { .. }));
        assert!(f.error.to_string().contains("injected fault"));

        // Incremental persistence: every benchmark has a result file and
        // the failure report names the casualty.
        for name in BENCHMARK_NAMES {
            let path = dir.join(format!("{name}.result"));
            let body = fs::read_to_string(&path).expect("result file exists");
            if name == "mcf" {
                assert!(body.contains("status=failed"));
            } else {
                assert!(body.contains("status=ok"));
                assert!(body.contains("error.instr.Tip="));
            }
        }
        let report = fs::read_to_string(dir.join("failures.txt")).expect("report");
        assert!(report.contains("mcf"));
        // Per-job timing landed in metrics.txt, including the casualty.
        let metrics = fs::read_to_string(dir.join("metrics.txt")).expect("metrics");
        assert!(metrics.contains("workers=1"), "{metrics}");
        assert!(
            metrics.contains("bench=mcf status=failed attempts=3"),
            "{metrics}"
        );
        assert!(metrics.contains("bench=exchange2 status=ok"), "{metrics}");
        // Host-throughput figures ride along in hostbench units.
        assert!(metrics.contains("total_cycles="), "{metrics}");
        assert!(metrics.contains("cycles_per_s="), "{metrics}");
        assert!(metrics.contains("per_worker_cycles_per_s="), "{metrics}");
        assert!(metrics.contains("scaling_efficiency="), "{metrics}");
        // Executor-level queueing figures ride along per job and in summary.
        assert!(metrics.contains("mean_queue_wait_ms="), "{metrics}");
        assert!(metrics.contains("queue_wait_ms="), "{metrics}");
        assert!(metrics.contains("worker=0"), "{metrics}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flaky_benchmark_succeeds_on_retry_with_new_seed() {
        let config = CampaignConfig {
            profilers: vec![ProfilerId::Tip],
            sampler: SamplerConfig::periodic(211),
            max_attempts: 3,
            seed: 7,
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(
            suite(SuiteScale::Test),
            &config,
            |job: &Job, ctx: &RunCtx| {
                // First attempt (seed 7) fails for lbm; the reseeded retry works.
                if job.bench.name == "lbm" && ctx.seed == 7 {
                    panic!("transient fault");
                }
                run_profiled(
                    &job.bench.program,
                    CoreConfig::default(),
                    job.sampler,
                    &job.profilers,
                    ctx.seed,
                )
            },
        );
        assert!(outcome.failed.is_empty());
        let lbm = outcome
            .completed
            .iter()
            .find(|c| c.run.bench.name == "lbm")
            .expect("lbm completed");
        assert_eq!(lbm.attempts, 2);
    }

    #[test]
    fn resume_skips_journalled_benchmarks_and_retries_failures() {
        use tip_workloads::benchmark;
        let dir = tmp_dir("resume");
        let config = CampaignConfig {
            profilers: vec![ProfilerId::Tip],
            sampler: SamplerConfig::periodic(211),
            max_attempts: 1,
            out_dir: Some(dir.clone()),
            ..CampaignConfig::default()
        };
        let benches = || {
            vec![
                benchmark("exchange2", SuiteScale::Test),
                benchmark("mcf", SuiteScale::Test),
            ]
        };
        let runner = |job: &Job, ctx: &RunCtx, fail_mcf: bool| {
            if fail_mcf && job.bench.name == "mcf" {
                panic!("simulated crash");
            }
            run_profiled(
                &job.bench.program,
                CoreConfig::default(),
                job.sampler,
                &job.profilers,
                ctx.seed,
            )
        };

        // First invocation: exchange2 completes, mcf dies.
        let first = run_campaign(benches(), &config, |j: &Job, c: &RunCtx| runner(j, c, true));
        assert_eq!(first.completed.len(), 1);
        assert_eq!(first.failed.len(), 1);
        let journal = fs::read_to_string(dir.join("journal.txt")).expect("journal");
        assert!(journal.contains("done exchange2"));
        assert!(journal.contains("failed mcf"));

        // Resumed invocation: exchange2 is skipped, mcf retried and now ok.
        let resumed = CampaignConfig {
            resume: true,
            ..config.clone()
        };
        let second = run_campaign(benches(), &resumed, |j: &Job, c: &RunCtx| {
            runner(j, c, false)
        });
        assert_eq!(second.skipped, vec!["exchange2"]);
        assert_eq!(second.completed.len(), 1);
        assert_eq!(second.completed[0].run.bench.name, "mcf");
        assert!(second.failed.is_empty());
        let journal = fs::read_to_string(dir.join("journal.txt")).expect("journal");
        assert!(journal.contains("done exchange2"));
        assert!(journal.contains("done mcf"));
        assert!(!journal.contains("failed"), "stale failure line replaced");

        // No torn temp files anywhere in the campaign directory.
        let torn = fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(torn, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cli_parses_flags_and_rejects_nonsense() {
        fn args<'a>(v: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
            v.iter().map(|s| (*s).to_owned())
        }
        let cli = CampaignCli::parse(args(&[
            "test",
            "/tmp/out",
            "--checkpoint",
            "50000",
            "--jobs",
            "4",
            "--resume",
        ]))
        .expect("valid");
        assert_eq!(cli.scale, SuiteScale::Test);
        assert_eq!(cli.out_dir.as_deref(), Some(Path::new("/tmp/out")));
        assert_eq!(cli.checkpoint_cycles, Some(50_000));
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.effective_jobs(), 4);
        assert!(cli.resume);
        assert_eq!(cli.config(&[ProfilerId::Tip]).jobs, 4);

        // Without --jobs the effective count is the host's parallelism.
        let cli = CampaignCli::parse(args(&["test"])).expect("valid");
        assert_eq!(cli.jobs, None);
        assert!(cli.effective_jobs() >= 1);

        assert!(CampaignCli::parse(args(&["bogus"])).is_err());
        assert!(CampaignCli::parse(args(&["--checkpoint"])).is_err());
        assert!(CampaignCli::parse(args(&["--checkpoint", "zero"])).is_err());
        assert!(CampaignCli::parse(args(&["--checkpoint", "0"])).is_err());
        assert!(CampaignCli::parse(args(&["--jobs"])).is_err());
        assert!(CampaignCli::parse(args(&["--jobs", "many"])).is_err());
        let err = CampaignCli::parse(args(&["--jobs", "0"])).expect_err("jobs 0");
        assert!(err.contains("at least 1"), "usable error: {err}");
        assert!(
            CampaignCli::parse(args(&["--resume"])).is_err(),
            "no out_dir"
        );
        assert!(CampaignCli::parse(args(&["test", "d", "extra"])).is_err());
    }
}
