//! PR-8 gates for the streaming observation path:
//!
//! 1. a campaign with a live aggregate attached writes `journal.txt`,
//!    `failures.txt`, and every `<bench>.result` byte-identical to a
//!    streaming-disabled campaign, at any worker count and with
//!    checkpointing on or off — streaming observes, it never changes;
//! 2. once the campaign completes, the live aggregate's merged units equal
//!    the quantized finished profiles exactly, for every profiler and the
//!    Oracle of every benchmark — the mid-campaign view converges to the
//!    truth, not an approximation of it.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tip_bench::campaign::{run_suite_campaign, CampaignConfig};
use tip_bench::live::LiveAggregate;
use tip_core::{ProfileDelta, ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_workloads::SuiteScale;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tip-stream-live-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn deterministic_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            // metrics.txt carries host timing; traces/checkpoints are
            // covered by the checkpoint suite.
            let keep = name == "journal.txt" || name == "failures.txt" || name.ends_with(".result");
            keep.then(|| (name.clone(), fs::read(dir.join(&name)).expect("read")))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn streaming_never_changes_campaign_artifacts_and_converges_to_truth() {
    let sampler = SamplerConfig::periodic(211);
    let profilers = vec![ProfilerId::Tip, ProfilerId::Nci, ProfilerId::Software];

    // The reference: serial, streaming disabled.
    let ref_dir = tmp_dir("ref");
    let reference = run_suite_campaign(
        SuiteScale::Test,
        &CampaignConfig {
            sampler,
            profilers: profilers.clone(),
            out_dir: Some(ref_dir.clone()),
            ..CampaignConfig::default()
        },
    );
    assert!(reference.failed.is_empty());
    let want = deterministic_files(&ref_dir);
    assert!(want.len() > 2, "journal + several result files");

    // Streaming on, across worker counts and with checkpointing (which
    // changes the flush boundaries — the telescoping merge must not care).
    for (tag, jobs, checkpoint) in [
        ("serial", 1, None),
        ("par", 4, None),
        ("ckpt", 2, Some(40_000)),
    ] {
        let dir = tmp_dir(tag);
        let live = Arc::new(LiveAggregate::new());
        let outcome = run_suite_campaign(
            SuiteScale::Test,
            &CampaignConfig {
                sampler,
                profilers: profilers.clone(),
                jobs,
                out_dir: Some(dir.clone()),
                checkpoint_cycles: checkpoint,
                live: Some(Arc::clone(&live)),
                ..CampaignConfig::default()
            },
        );
        assert!(outcome.failed.is_empty(), "{tag}: campaign must complete");
        let got = deterministic_files(&dir);
        assert_eq!(
            got.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            want.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "{tag}: same artifact set"
        );
        for ((name, a), (_, b)) in got.iter().zip(&want) {
            assert_eq!(a, b, "{tag}: {name} differs from the non-streaming run");
        }

        // Convergence: the live units equal the finished profiles exactly.
        let view = live.view();
        assert_eq!(view.benches.len(), outcome.completed.len(), "{tag}");
        for c in &outcome.completed {
            let name = c.run.bench.name;
            let b = view
                .bench(name)
                .unwrap_or_else(|| panic!("{tag}: {name} streamed"));
            assert_eq!(b.settled, Some(true), "{tag}: {name} marked settled");
            assert!(b.flushes > 0, "{tag}: {name} flushed at least once");
            assert_eq!(b.cycles, c.run.run.summary.cycles, "{tag}: {name} cycles");
            for &p in &profilers {
                let finished =
                    c.run
                        .run
                        .bank
                        .profile_of(&c.run.bench.program, p, Granularity::Function);
                assert_eq!(
                    b.units(Some(p))
                        .unwrap_or_else(|| panic!("{tag}: {name} {p:?} units")),
                    ProfileDelta::quantize(&finished).as_slice(),
                    "{tag}: {name} {p:?} live units != finished profile"
                );
            }
            let oracle = c
                .run
                .run
                .bank
                .oracle
                .profile(&c.run.bench.program, Granularity::Function);
            assert_eq!(
                b.oracle,
                ProfileDelta::quantize(&oracle),
                "{tag}: {name} Oracle live units != finished profile"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&ref_dir);
}
