//! Keystone acceptance for checkpoint/restore: **resume equivalence**.
//!
//! Checkpointing a run mid-flight, tearing the whole simulator down, and
//! restoring from the `TIPS` snapshot must produce a commit trace whose
//! decoded records are identical to an uninterrupted run with the same
//! seed, and final profiles that match sample-for-sample. The cut point is
//! also property-tested at random cycles, since rare in-flight pipeline
//! states (mid-flush, full ROB, parked front-end) only show up at odd cuts.

use std::fs::{self, File};
use std::path::PathBuf;

use proptest::prelude::*;
use tip_bench::checkpoint::{run_profiled_checkpointed, save_checkpoint, CheckpointSpec};
use tip_bench::run::run_profiled;
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_ooo::{Core, CoreConfig, CycleRecord, TraceSink};
use tip_trace::framing::crc32;
use tip_trace::{TraceReader, TraceWriter};
use tip_workloads::{benchmark, SuiteScale};

const PROFILERS: [ProfilerId; 2] = [ProfilerId::Tip, ProfilerId::Nci];

fn sampler() -> SamplerConfig {
    SamplerConfig::periodic(211)
}

struct Tee<'a, A, B>(&'a mut A, &'a mut B);
impl<A: TraceSink, B: TraceSink> TraceSink for Tee<'_, A, B> {
    fn on_cycle(&mut self, r: &CycleRecord) {
        self.0.on_cycle(r);
        self.1.on_cycle(r);
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tip-resume-eq-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// The trace an uninterrupted run writes, as raw bytes.
fn uninterrupted_trace(seed: u64) -> Vec<u8> {
    let b = benchmark("exchange2", SuiteScale::Test);
    let mut core = Core::new(&b.program, CoreConfig::default(), seed);
    let mut writer = TraceWriter::new(Vec::new());
    core.run(&mut writer, 400_000_000);
    writer.flush().expect("flush");
    writer.into_inner().expect("in-memory writer")
}

/// Simulation is deterministic: two same-seed runs emit byte-identical
/// traces (checked via the framing CRC and outright equality), which is
/// what makes record-level resume equivalence a meaningful bar.
#[test]
fn same_seed_runs_emit_bit_identical_traces() {
    let a = uninterrupted_trace(17);
    let b = uninterrupted_trace(17);
    assert_eq!(crc32(&a), crc32(&b));
    assert_eq!(a, b);
}

/// Checkpoint at cycle `cut`, tear everything down, restore, and compare
/// against the uninterrupted same-seed run.
fn assert_resume_equivalent(seed: u64, cut: u64, tag: &str) {
    let b = benchmark("exchange2", SuiteScale::Test);
    let baseline = run_profiled(
        &b.program,
        CoreConfig::default(),
        sampler(),
        &PROFILERS,
        seed,
    )
    .expect("uninterrupted run");
    let clean = uninterrupted_trace(seed);
    let clean_records: Vec<CycleRecord> = TraceReader::new(clean.as_slice())
        .collect::<Result<_, _>>()
        .expect("clean trace decodes");

    let dir = tmp_dir(tag);
    let spec = CheckpointSpec {
        snapshot_path: dir.join("bench.tips"),
        trace_path: dir.join("bench.trace"),
        every_cycles: 1 << 40, // the resumed run finishes in one slice
        resume: true,
    };

    // The "interrupted" process: simulate to `cut`, seal the trace, persist
    // the checkpoint, and drop every live object (the teardown).
    {
        let mut core = Core::new(&b.program, CoreConfig::default(), seed);
        let mut bank = ProfilerBank::new(&b.program, sampler(), &PROFILERS);
        let file = File::create(&spec.trace_path).expect("trace file");
        let mut writer = TraceWriter::new(file);
        {
            let mut tee = Tee(&mut writer, &mut bank);
            core.run(&mut tee, cut);
        }
        writer.flush().expect("flush");
        save_checkpoint(
            &spec.snapshot_path,
            core.stats().cycles,
            &core.snapshot(),
            &bank.snapshot(),
            writer.position(),
        )
        .expect("save checkpoint");
    }

    // The "restarted" process: restore and run to completion.
    let resumed = run_profiled_checkpointed(
        &b.program,
        CoreConfig::default(),
        sampler(),
        &PROFILERS,
        seed,
        &spec,
    )
    .expect("resumed run completes");

    // Identical final profiles and counters.
    assert_eq!(resumed.summary, baseline.summary, "cut={cut} seed={seed}");
    assert_eq!(resumed.stats, baseline.stats, "cut={cut} seed={seed}");
    assert_eq!(resumed.bank.total_cycles, baseline.bank.total_cycles);
    for p in PROFILERS {
        assert_eq!(
            resumed.bank.samples_of(p),
            baseline.bank.samples_of(p),
            "profiler {p:?} diverged at cut={cut} seed={seed}"
        );
    }

    // Bit-identical commit trace: every decoded record matches the
    // uninterrupted run's (chunk boundaries differ at the cut, so the
    // comparison is at the record level the profilers actually consume).
    let file = File::open(&spec.trace_path).expect("resumed trace");
    let resumed_records: Vec<CycleRecord> = TraceReader::new(file)
        .collect::<Result<_, _>>()
        .expect("resumed trace decodes");
    assert_eq!(resumed_records.len(), clean_records.len());
    assert_eq!(resumed_records, clean_records, "cut={cut} seed={seed}");

    // The consumed checkpoint is gone.
    assert!(!spec.snapshot_path.exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_at_a_fixed_cycle_is_equivalent() {
    assert_resume_equivalent(11, 5_000, "fixed");
}

/// A campaign killed mid-benchmark: the on-disk state is a journal with no
/// completed entries plus the benchmark's checkpoint and sealed trace
/// prefix. Re-invoking with `resume` restores the checkpoint, finishes the
/// run, and the result matches an uninterrupted campaign's.
#[test]
fn killed_campaign_resumes_mid_benchmark_from_its_checkpoint() {
    use tip_bench::campaign::{run_campaign, CampaignConfig};

    let dir = tmp_dir("killed-campaign");
    let config = CampaignConfig {
        profilers: PROFILERS.to_vec(),
        sampler: sampler(),
        out_dir: Some(dir.clone()),
        checkpoint_cycles: Some(1 << 40),
        resume: true,
        seed: 23,
        ..CampaignConfig::default()
    };
    let b = benchmark("exchange2", SuiteScale::Test);
    let baseline = run_profiled(&b.program, CoreConfig::default(), sampler(), &PROFILERS, 23)
        .expect("uninterrupted run");

    // Plant the state a SIGKILLed campaign leaves behind: a mid-run
    // checkpoint at the campaign's own paths, and no journal entry.
    let spec = config
        .checkpoint_spec("exchange2")
        .expect("checkpointing configured");
    {
        let mut core = Core::new(&b.program, CoreConfig::default(), 23);
        let mut bank = ProfilerBank::new(&b.program, sampler(), &PROFILERS);
        let file = File::create(&spec.trace_path).expect("trace file");
        let mut writer = TraceWriter::new(file);
        {
            let mut tee = Tee(&mut writer, &mut bank);
            core.run(&mut tee, 3_000);
        }
        writer.flush().expect("flush");
        save_checkpoint(
            &spec.snapshot_path,
            core.stats().cycles,
            &core.snapshot(),
            &bank.snapshot(),
            writer.position(),
        )
        .expect("save checkpoint");
    }

    let outcome = run_campaign(
        vec![benchmark("exchange2", SuiteScale::Test)],
        &config,
        |job: &tip_bench::Job, ctx: &tip_bench::RunCtx| {
            run_profiled_checkpointed(
                &job.bench.program,
                CoreConfig::default(),
                job.sampler,
                &job.profilers,
                ctx.seed,
                ctx.checkpoint.as_ref().expect("checkpointing configured"),
            )
        },
    );
    assert!(outcome.failed.is_empty(), "{}", outcome.summary());
    assert_eq!(outcome.completed.len(), 1);
    let resumed = &outcome.completed[0].run.run;
    assert_eq!(resumed.summary, baseline.summary);
    for p in PROFILERS {
        assert_eq!(resumed.bank.samples_of(p), baseline.bank.samples_of(p));
    }
    // The journal now records the benchmark, the checkpoint is consumed,
    // and nothing torn is left behind.
    let journal = fs::read_to_string(dir.join("journal.txt")).expect("journal");
    assert!(journal.contains("done exchange2"));
    assert!(!spec.snapshot_path.exists());
    let torn = fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .count();
    assert_eq!(torn, 0);
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Resume equivalence holds at arbitrary cut cycles and seeds.
    #[test]
    fn resume_at_random_cycles_is_equivalent(
        seed in 1u64..1_000,
        cut in 200u64..20_000,
    ) {
        assert_resume_equivalent(seed, cut, &format!("prop-{seed}-{cut}"));
    }
}
