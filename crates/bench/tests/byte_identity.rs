//! PR-4 regression gates: the allocation-free cycle loop (reused
//! `CycleRecord`, in-place issue-queue compaction) and the sample-aware
//! profiler fan-out are *performance* changes — every observable artifact
//! must stay byte-identical. These tests pin that from three angles:
//!
//! 1. the framed trace a run writes (same seed → same bytes, and the
//!    reused-record `run()` loop vs the fresh-record `step()` loop agree),
//! 2. the profiler-bank results (two identical runs produce equal
//!    `BankResult`s, snapshot-for-snapshot),
//! 3. campaign artifacts (`journal.txt` and every `<bench>.result` of two
//!    same-seed campaigns are byte-for-byte equal).

use std::fs;
use std::path::PathBuf;

use tip_bench::campaign::{run_suite_campaign, CampaignConfig};
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_ooo::{Core, CoreConfig};
use tip_trace::TraceWriter;
use tip_workloads::{benchmark, SuiteScale};

const SEED: u64 = 42;
const BUDGET: u64 = 150_000;

fn trace_bytes_via_run(bench: &'static str) -> Vec<u8> {
    let b = benchmark(bench, SuiteScale::Test);
    let mut core = Core::new(&b.program, CoreConfig::default(), SEED);
    let mut writer = TraceWriter::new(Vec::new());
    core.run(&mut writer, BUDGET);
    writer.into_inner().expect("flush")
}

fn trace_bytes_via_step(bench: &'static str) -> Vec<u8> {
    let b = benchmark(bench, SuiteScale::Test);
    let mut core = Core::new(&b.program, CoreConfig::default(), SEED);
    let mut writer = TraceWriter::new(Vec::new());
    while !core.finished() && core.cycle() < BUDGET {
        core.step(&mut writer);
    }
    writer.into_inner().expect("flush")
}

#[test]
fn same_seed_traces_are_byte_identical() {
    for bench in ["exchange2", "mcf"] {
        let a = trace_bytes_via_run(bench);
        let b = trace_bytes_via_run(bench);
        assert!(!a.is_empty());
        assert_eq!(a, b, "{bench}: same-seed traces diverged");
    }
}

#[test]
fn reused_record_loop_matches_fresh_record_steps() {
    // `run()` reuses one CycleRecord for the whole run; `step()` builds a
    // fresh one per cycle. A stale-tail leak in the reuse path would show
    // up as differing trace bytes here.
    for bench in ["exchange2", "perlbench"] {
        let reused = trace_bytes_via_run(bench);
        let fresh = trace_bytes_via_step(bench);
        assert_eq!(reused, fresh, "{bench}: record reuse leaked state");
    }
}

#[test]
fn same_seed_profiles_are_identical() {
    let b = benchmark("imagick", SuiteScale::Test);
    let run_once = || {
        let mut bank =
            ProfilerBank::new(&b.program, SamplerConfig::periodic(149), &ProfilerId::ALL);
        let mut core = Core::new(&b.program, CoreConfig::default(), SEED);
        core.run(&mut bank, BUDGET);
        bank.finish()
    };
    let (first, second) = (run_once(), run_once());
    assert_eq!(first.total_cycles, second.total_cycles);
    assert_eq!(first.oracle, second.oracle);
    assert_eq!(first.samples, second.samples);
}

#[test]
fn same_seed_campaign_artifacts_are_byte_identical() {
    let run_into = |dir: &PathBuf| {
        let config = CampaignConfig {
            out_dir: Some(dir.clone()),
            ..CampaignConfig::default()
        };
        let outcome = run_suite_campaign(SuiteScale::Test, &config);
        assert!(outcome.failed.is_empty(), "campaign must complete cleanly");
    };
    let base = std::env::temp_dir().join(format!("tip-byte-identity-{}", std::process::id()));
    let (dir_a, dir_b) = (base.join("a"), base.join("b"));
    fs::create_dir_all(&dir_a).expect("mkdir");
    fs::create_dir_all(&dir_b).expect("mkdir");
    run_into(&dir_a);
    run_into(&dir_b);

    let mut compared = 0;
    for entry in fs::read_dir(&dir_a).expect("read dir") {
        let name = entry.expect("entry").file_name();
        let name_str = name.to_string_lossy();
        if name_str != "journal.txt" && !name_str.ends_with(".result") {
            continue; // metrics.txt carries host timing, inherently unstable
        }
        let a = fs::read(dir_a.join(&name)).expect("read a");
        let b = fs::read(dir_b.join(&name)).expect("read b");
        assert_eq!(a, b, "{name_str} differs between same-seed campaigns");
        compared += 1;
    }
    assert!(compared > 2, "expected journal + several result files");
    let _ = fs::remove_dir_all(&base);
}
