//! Kill-and-resume under parallelism: SIGKILL a `--jobs 4` campaign
//! mid-flight, resume it, and the final on-disk results must be
//! byte-identical to an uninterrupted campaign — with only the incomplete
//! jobs re-run (journalled benchmarks are skipped, not re-enqueued).
//!
//! This drives the real `fig10` binary as a subprocess, because the crash
//! being simulated is the *process* dying with worker threads in flight.

#![cfg(unix)]

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tip_workloads::BENCHMARK_NAMES;

const CHECKPOINT: &str = "20000";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tip-par-kill-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fig10(dir: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig10"));
    cmd.arg("test")
        .arg(dir)
        .args(["--jobs", "4", "--checkpoint", CHECKPOINT])
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if resume {
        cmd.arg("--resume");
    }
    cmd
}

fn done_lines(dir: &Path) -> Vec<String> {
    fs::read_to_string(dir.join("journal.txt"))
        .unwrap_or_default()
        .lines()
        .filter_map(|l| l.strip_prefix("done ").map(str::to_owned))
        .collect()
}

/// Waits until the campaign has journalled at least one completed benchmark
/// (or exited on its own), then returns whether the child is still alive.
fn wait_for_progress(child: &mut Child, dir: &Path) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if !done_lines(dir).is_empty() {
            return child.try_wait().expect("child status").is_none();
        }
        if child.try_wait().expect("child status").is_some() {
            return false;
        }
        assert!(Instant::now() < deadline, "campaign made no progress");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The deterministic artifacts: result files, journal, failure report.
/// `metrics.txt` is host timing; `.trace`/`.tips` are checkpoint plumbing
/// whose chunk boundaries legitimately differ at the kill point (their
/// *records* are covered by the resume-equivalence suite).
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .expect("campaign dir exists")
        .map(|e| e.expect("dir entry"))
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with(".result") || name == "journal.txt" || name == "failures.txt"
        })
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("artifact readable"),
            )
        })
        .collect()
}

#[test]
fn sigkilled_parallel_campaign_resumes_to_identical_results() {
    // Uninterrupted reference at the same worker count and seeds.
    let ref_dir = tmp_dir("ref");
    let output = fig10(&ref_dir, false).output().expect("reference campaign");
    assert!(
        output.status.success(),
        "reference campaign failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(done_lines(&ref_dir).len(), BENCHMARK_NAMES.len());

    // The victim: killed as soon as it has journalled some (but usually not
    // all) benchmarks, with 4 workers mid-simulation.
    let kill_dir = tmp_dir("kill");
    let mut child = fig10(&kill_dir, false).spawn().expect("spawn campaign");
    if wait_for_progress(&mut child, &kill_dir) {
        child.kill().expect("SIGKILL");
    }
    child.wait().expect("reap");
    let done_at_kill = done_lines(&kill_dir);
    assert!(!done_at_kill.is_empty(), "kill landed after some progress");

    // Resume: only the incomplete jobs may re-run.
    let output = fig10(&kill_dir, true).output().expect("resumed campaign");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "resume failed: {stderr}");
    if done_at_kill.len() < BENCHMARK_NAMES.len() {
        assert!(
            stderr.contains(&format!("{} skipped (already done)", done_at_kill.len())),
            "journalled benchmarks were skipped, not re-enqueued: {stderr}"
        );
    }

    // Final state: full canonical journal, results byte-identical to the
    // uninterrupted reference.
    assert_eq!(done_lines(&kill_dir), BENCHMARK_NAMES.to_vec());
    let reference = artifacts(&ref_dir);
    let resumed = artifacts(&kill_dir);
    assert_eq!(
        reference.keys().collect::<Vec<_>>(),
        resumed.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        reference.keys().filter(|k| k.ends_with(".result")).count(),
        BENCHMARK_NAMES.len()
    );
    for (name, bytes) in &reference {
        assert_eq!(
            bytes, &resumed[name],
            "artifact `{name}` diverged after kill+resume"
        );
    }

    // No torn temp files survived the SIGKILL.
    let torn = fs::read_dir(&kill_dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .count();
    assert_eq!(torn, 0);

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&kill_dir);
}
