//! Keystone acceptance for the parallel executor: **deterministic merge**.
//!
//! A campaign fanned out over 4 workers must be indistinguishable on disk
//! from the same campaign at `--jobs 1`: byte-identical `journal.txt`,
//! `failures.txt`, and every `<bench>.result` file, and sample-identical
//! profiles — including when a benchmark fails its first attempt and is
//! retried, so the retry ladder itself is covered by the guarantee. Only
//! `metrics.txt` (host wall-clock) may differ.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use tip_bench::campaign::{run_campaign, CampaignConfig, CampaignOutcome};
use tip_bench::executor::{Job, RunCtx};
use tip_bench::run::run_profiled;
use tip_core::{ProfilerId, SamplerConfig};
use tip_ooo::CoreConfig;
use tip_workloads::{suite, SuiteScale, BENCHMARK_NAMES};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tip-par-eq-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every campaign artifact that participates in the byte-identity
/// guarantee, as `name -> bytes`. `metrics.txt` carries host timing and is
/// explicitly excluded; nothing else is.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .expect("campaign dir exists")
        .map(|e| e.expect("dir entry"))
        .filter(|e| e.file_name() != "metrics.txt")
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("artifact readable"),
            )
        })
        .collect()
}

/// The shared runner: `mcf` dies on its first attempt (base seed) and
/// succeeds on the reseeded retry, every other benchmark runs clean. All
/// variation derives from the job spec and context, never from scheduling.
fn flaky_runner(job: &Job, ctx: &RunCtx) -> Result<tip_bench::ProfiledRun, tip_bench::RunError> {
    if job.bench.name == "mcf" && ctx.attempt == 1 {
        panic!("transient fault on first attempt");
    }
    run_profiled(
        &job.bench.program,
        CoreConfig::default(),
        job.sampler,
        &job.profilers,
        ctx.seed,
    )
}

fn campaign(jobs: usize, dir: &Path) -> CampaignOutcome {
    let config = CampaignConfig {
        profilers: vec![ProfilerId::Tip, ProfilerId::Nci],
        sampler: SamplerConfig::periodic(211),
        max_attempts: 2,
        seed: 17,
        jobs,
        out_dir: Some(dir.to_path_buf()),
        ..CampaignConfig::default()
    };
    run_campaign(suite(SuiteScale::Test), &config, flaky_runner)
}

#[test]
fn four_workers_produce_byte_identical_outputs_to_one() {
    let dir_serial = tmp_dir("serial");
    let dir_parallel = tmp_dir("parallel");
    let serial = campaign(1, &dir_serial);
    let parallel = campaign(4, &dir_parallel);

    // Same settlement: everything completed, mcf needed its retry.
    for outcome in [&serial, &parallel] {
        assert_eq!(outcome.completed.len(), BENCHMARK_NAMES.len());
        assert!(outcome.failed.is_empty(), "{}", outcome.summary());
        let mcf = outcome
            .completed
            .iter()
            .find(|c| c.run.bench.name == "mcf")
            .expect("mcf completed");
        assert_eq!(mcf.attempts, 2, "mcf was retried");
    }

    // Byte-identical artifacts: journal, failure report, every result file.
    let a = artifacts(&dir_serial);
    let b = artifacts(&dir_parallel);
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "same artifact set"
    );
    assert!(a.contains_key("journal.txt"));
    assert!(a.contains_key("failures.txt"));
    assert_eq!(
        a.keys().filter(|k| k.ends_with(".result")).count(),
        BENCHMARK_NAMES.len()
    );
    for (name, bytes) in &a {
        assert_eq!(bytes, &b[name], "artifact `{name}` diverged across --jobs");
    }

    // journal order is canonical suite order, not completion order.
    let journal = String::from_utf8(a["journal.txt"].clone()).expect("utf8");
    let journalled: Vec<&str> = journal
        .lines()
        .map(|l| l.strip_prefix("done ").expect("all done"))
        .collect();
    assert_eq!(journalled, BENCHMARK_NAMES.to_vec());

    // Sample-identical profiles, not just identical summaries on disk.
    for (s, p) in serial.completed.iter().zip(&parallel.completed) {
        assert_eq!(s.run.bench.name, p.run.bench.name);
        assert_eq!(s.run.run.summary, p.run.run.summary);
        assert_eq!(s.run.run.stats, p.run.run.stats);
        for id in [ProfilerId::Tip, ProfilerId::Nci] {
            assert_eq!(
                s.run.run.bank.samples_of(id),
                p.run.run.bank.samples_of(id),
                "profiler {id:?} diverged for {}",
                s.run.bench.name
            );
        }
    }

    // metrics.txt exists in both and records the actual worker count.
    for (dir, workers) in [(&dir_serial, 1), (&dir_parallel, 4)] {
        let metrics = fs::read_to_string(dir.join("metrics.txt")).expect("metrics");
        assert!(metrics.contains(&format!("workers={workers}")), "{metrics}");
        assert!(metrics.contains("speedup="), "{metrics}");
        assert!(
            metrics.contains("bench=mcf status=ok attempts=2"),
            "{metrics}"
        );
    }

    let _ = fs::remove_dir_all(&dir_serial);
    let _ = fs::remove_dir_all(&dir_parallel);
}

/// Wall-clock speedup is real but host-dependent, so it is not asserted in
/// the default suite; run with `--ignored` on an idle multi-core machine.
#[test]
#[ignore = "timing-sensitive; run manually on an idle machine"]
fn four_workers_are_faster_than_one() {
    use std::time::Instant;
    let dir_serial = tmp_dir("speed-serial");
    let dir_parallel = tmp_dir("speed-parallel");
    let t0 = Instant::now();
    let _ = campaign(1, &dir_serial);
    let serial = t0.elapsed();
    let t1 = Instant::now();
    let _ = campaign(4, &dir_parallel);
    let parallel = t1.elapsed();
    assert!(
        parallel < serial,
        "4 workers ({parallel:?}) should beat 1 ({serial:?})"
    );
    let _ = fs::remove_dir_all(&dir_serial);
    let _ = fs::remove_dir_all(&dir_parallel);
}
