//! Acceptance: a figure-style sweep completes with a failure report even
//! when one workload panics and another livelocks, and every other
//! benchmark's result is intact on disk.

use std::fs;
use std::path::PathBuf;

use tip_bench::campaign::{run_campaign, CampaignConfig};
use tip_bench::executor::{Job, RunCtx};
use tip_bench::run::{run_profiled, RunError};
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_ooo::{Core, CoreConfig, SimError};
use tip_trace::{Fault, FaultPlan};
use tip_workloads::{suite, SuiteScale, BENCHMARK_NAMES};

#[test]
fn sweep_survives_panic_and_livelock_with_results_on_disk() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("tip-chaos-campaign-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let config = CampaignConfig {
        profilers: vec![ProfilerId::Tip],
        sampler: SamplerConfig::periodic(211),
        max_attempts: 2,
        out_dir: Some(dir.clone()),
        ..CampaignConfig::default()
    };
    let plan = FaultPlan::new(1, vec![Fault::ForcePanic]);
    let outcome = run_campaign(
        suite(SuiteScale::Test),
        &config,
        move |job: &Job, ctx: &RunCtx| {
            let bench = &job.bench;
            if bench.name == "mcf" && plan.forces_panic() {
                panic!("chaos: forced panic");
            }
            if bench.name == "lbm" {
                // A lost redirect wedges the pipeline; the watchdog converts
                // the livelock into a structured SimError.
                let mut bank = ProfilerBank::new(&bench.program, job.sampler, &job.profilers);
                let mut core = Core::new(&bench.program, CoreConfig::default(), ctx.seed);
                for _ in 0..100 {
                    core.step(&mut bank);
                }
                core.inject_lost_redirect();
                return core
                    .run_to_completion(&mut bank, 10_000_000)
                    .map(|_| unreachable!("wedged core cannot complete"))
                    .map_err(|source| RunError::Sim {
                        bench: bench.name.to_owned(),
                        source,
                    });
            }
            run_profiled(
                &bench.program,
                CoreConfig::default(),
                job.sampler,
                &job.profilers,
                ctx.seed,
            )
        },
    );

    // The sweep finished: every other benchmark completed.
    assert_eq!(outcome.completed.len(), BENCHMARK_NAMES.len() - 2);
    assert_eq!(outcome.failed.len(), 2);
    let lbm = outcome
        .failed
        .iter()
        .find(|f| f.name == "lbm")
        .expect("lbm reported");
    assert!(
        matches!(
            &lbm.error,
            RunError::Sim {
                source: SimError::Livelock(_),
                ..
            }
        ),
        "livelock classified: {:?}",
        lbm.error
    );
    let mcf = outcome
        .failed
        .iter()
        .find(|f| f.name == "mcf")
        .expect("mcf reported");
    assert!(matches!(&mcf.error, RunError::Panicked { .. }));
    assert_eq!(mcf.attempts, 2, "panic was retried before giving up");

    // Results on disk: one file per benchmark plus the failure report,
    // survivors marked ok with their error metric, casualties marked failed.
    for name in BENCHMARK_NAMES {
        let body = fs::read_to_string(dir.join(format!("{name}.result")))
            .unwrap_or_else(|e| panic!("{name}.result missing: {e}"));
        if name == "mcf" || name == "lbm" {
            assert!(body.contains("status=failed"), "{name}: {body}");
        } else {
            assert!(body.contains("status=ok"), "{name}: {body}");
            assert!(body.contains("error.instr.Tip="), "{name}: {body}");
        }
    }
    let report = fs::read_to_string(dir.join("failures.txt")).expect("failure report");
    assert!(report.contains("completed=25 failed=2"), "{report}");
    assert!(report.contains("mcf") && report.contains("lbm"), "{report}");
    assert!(report.contains("livelock"), "{report}");

    let _ = fs::remove_dir_all(&dir);
}
