//! One Criterion benchmark per paper figure/table: each measures the time
//! to regenerate that experiment's data at `Test` scale. The printable
//! full-scale rows come from the `src/bin/figNN` binaries; these benches
//! keep every experiment exercised (and timed) by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tip_bench::experiments::{self, error_rows, fig07, fig11c, mean_errors, validation};
use tip_bench::run::run_profiled;
use tip_core::{ProfilerId, SamplerConfig, SamplingMode};
use tip_isa::Granularity;
use tip_ooo::CoreConfig;
use tip_workloads::{benchmark, SuiteScale};

const SCALE: SuiteScale = SuiteScale::Test;
const INTERVAL: u64 = 101;

/// One benchmark per workload class — enough to exercise every experiment's
/// code path while keeping `cargo bench` wall-clock reasonable. The printed
/// full-suite rows come from the `src/bin/figNN` binaries.
const MINI: [&str; 3] = ["x264", "imagick", "streamcluster"];

fn suite_once(profilers: &[ProfilerId]) -> Vec<experiments::SuiteRun> {
    mini_suite(SamplerConfig::periodic(INTERVAL), profilers)
}

fn mini_suite(sampler: SamplerConfig, profilers: &[ProfilerId]) -> Vec<experiments::SuiteRun> {
    MINI.iter()
        .map(|&name| {
            let bench = benchmark(name, SCALE);
            let run = run_profiled(
                &bench.program,
                CoreConfig::default(),
                sampler,
                profilers,
                42,
            )
            .expect("bench workload terminates");
            experiments::SuiteRun { bench, run }
        })
        .collect()
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("table1_config", |b| {
        b.iter(|| {
            let cfg = tip_ooo::CoreConfig::default();
            cfg.validate();
            cfg
        })
    });

    g.bench_function("fig07_cycle_stacks", |b| {
        b.iter(|| {
            let runs = suite_once(&[ProfilerId::Tip]);
            fig07(&runs).len()
        })
    });

    for (name, granularity, profilers) in [
        (
            "fig08_function_errors",
            Granularity::Function,
            vec![
                ProfilerId::Software,
                ProfilerId::Dispatch,
                ProfilerId::Lci,
                ProfilerId::Nci,
                ProfilerId::TipIlp,
                ProfilerId::Tip,
            ],
        ),
        (
            "fig09_block_errors",
            Granularity::BasicBlock,
            vec![
                ProfilerId::Lci,
                ProfilerId::Nci,
                ProfilerId::TipIlp,
                ProfilerId::Tip,
            ],
        ),
        (
            "fig10_instruction_errors",
            Granularity::Instruction,
            vec![ProfilerId::Nci, ProfilerId::TipIlp, ProfilerId::Tip],
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let runs = suite_once(&profilers);
                let rows = error_rows(&runs, granularity, &profilers);
                mean_errors(&rows, &profilers)
            })
        });
    }

    g.bench_function("fig01_headline_errors", |b| {
        b.iter(|| {
            let profilers = [
                ProfilerId::Software,
                ProfilerId::Dispatch,
                ProfilerId::Lci,
                ProfilerId::Nci,
                ProfilerId::Tip,
            ];
            let runs = suite_once(&profilers);
            let rows = error_rows(&runs, Granularity::Instruction, &profilers);
            mean_errors(&rows, &profilers)
        })
    });

    g.bench_function("fig11a_frequency_sweep", |b| {
        let profilers = [ProfilerId::Nci, ProfilerId::TipIlp, ProfilerId::Tip];
        b.iter(|| {
            let mut out = Vec::new();
            for &(_, freq) in &experiments::FREQUENCIES {
                let interval = experiments::interval_for_frequency(freq);
                let runs = mini_suite(SamplerConfig::periodic(interval), &profilers);
                let rows = error_rows(&runs, Granularity::Instruction, &profilers);
                out.push(mean_errors(&rows, &profilers));
            }
            out
        })
    });

    g.bench_function("fig11b_periodic_vs_random", |b| {
        b.iter(|| {
            let periodic = mini_suite(SamplerConfig::periodic(INTERVAL), &[ProfilerId::Tip]);
            let random = mini_suite(
                SamplerConfig {
                    interval: INTERVAL,
                    mode: SamplingMode::Random,
                    seed: 5,
                },
                &[ProfilerId::Tip],
            );
            (periodic.len(), random.len())
        })
    });

    g.bench_function("fig11c_nci_ilp_boxes", |b| {
        b.iter(|| {
            let profilers = [
                ProfilerId::NciIlp,
                ProfilerId::Nci,
                ProfilerId::TipIlp,
                ProfilerId::Tip,
            ];
            let runs = suite_once(&profilers);
            fig11c(&runs).len()
        })
    });

    g.bench_function("fig12_imagick_profiles", |b| {
        b.iter(|| {
            experiments::fig12(SCALE)
                .expect("fig12 runs")
                .functions
                .len()
        })
    });

    g.bench_function("fig13_imagick_speedup", |b| {
        b.iter(|| experiments::fig13(SCALE).expect("fig13 runs").speedup)
    });

    g.bench_function("validation_platform_gap", |b| {
        b.iter(|| validation(SCALE).expect("validation runs").len())
    });

    g.bench_function("overhead_models", |b| {
        b.iter(|| {
            use tip_core::overhead::*;
            (
                tip_storage_bytes(4),
                tip_sample_bytes(4),
                oracle_data_rate(4, 3.2),
                runtime_overhead_fraction(tip_sample_bytes(4), 4_000.0, 3.2),
            )
        })
    });

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_figures
}
criterion_main!(benches);
