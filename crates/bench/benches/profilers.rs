//! Cost of online profiling: simulation throughput with each profiler (and
//! the full bank) attached, versus no trace consumer at all.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_ooo::{Core, CoreConfig};
use tip_workloads::{benchmark, SuiteScale};

fn bench_profiler_overhead(c: &mut Criterion) {
    let bench = benchmark("imagick", SuiteScale::Test);
    let mut probe = Core::new(&bench.program, CoreConfig::default(), 42);
    let cycles = probe.run(&mut (), 100_000_000).cycles;

    let mut g = c.benchmark_group("profiler-overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cycles));

    g.bench_function("no_profiler", |b| {
        b.iter(|| {
            let mut core = Core::new(&bench.program, CoreConfig::default(), 42);
            core.run(&mut (), 100_000_000).cycles
        })
    });
    for id in ProfilerId::ALL {
        g.bench_function(format!("with_{}", id.label()), |b| {
            b.iter(|| {
                let mut bank =
                    ProfilerBank::new(&bench.program, SamplerConfig::periodic(149), &[id]);
                let mut core = Core::new(&bench.program, CoreConfig::default(), 42);
                core.run(&mut bank, 100_000_000);
                bank.finish().total_cycles
            })
        });
    }
    g.bench_function("with_full_bank", |b| {
        b.iter(|| {
            let mut bank = ProfilerBank::new(
                &bench.program,
                SamplerConfig::periodic(149),
                &ProfilerId::ALL,
            );
            let mut core = Core::new(&bench.program, CoreConfig::default(), 42);
            core.run(&mut bank, 100_000_000);
            bank.finish().total_cycles
        })
    });
    g.finish();
}

fn bench_profile_construction(c: &mut Criterion) {
    let bench = benchmark("gcc", SuiteScale::Test);
    let mut bank = ProfilerBank::new(
        &bench.program,
        SamplerConfig::periodic(53),
        &ProfilerId::ALL,
    );
    let mut core = Core::new(&bench.program, CoreConfig::default(), 42);
    core.run(&mut bank, 100_000_000);
    let result = bank.finish();

    let mut g = c.benchmark_group("post-processing");
    for granularity in [
        tip_isa::Granularity::Instruction,
        tip_isa::Granularity::BasicBlock,
        tip_isa::Granularity::Function,
    ] {
        g.bench_function(format!("error_at_{granularity}"), |b| {
            b.iter(|| result.error_of(&bench.program, ProfilerId::Tip, granularity))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_profiler_overhead, bench_profile_construction
}
criterion_main!(benches);
