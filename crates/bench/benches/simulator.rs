//! Throughput of the simulation substrates: the functional executor, the
//! memory hierarchy, and the full out-of-order core on one benchmark per
//! workload class.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::time::Duration;
use tip_isa::Executor;
use tip_mem::{MemConfig, MemSystem};
use tip_ooo::{Core, CoreConfig};
use tip_workloads::{benchmark, SuiteScale};

fn bench_executor(c: &mut Criterion) {
    let bench = benchmark("x264", SuiteScale::Test);
    let dyn_len = Executor::new(&bench.program, 42).count() as u64;
    let mut g = c.benchmark_group("executor");
    g.throughput(Throughput::Elements(dyn_len));
    g.bench_function("x264_stream", |b| {
        b.iter(|| Executor::new(&bench.program, 42).count())
    });
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l1_hits", |b| {
        b.iter_batched(
            || MemSystem::new(&MemConfig::default()),
            |mut mem| {
                let mut t = 0;
                for i in 0..10_000u64 {
                    t = mem.access_data(0x1000 + (i % 64) * 8, t, false).ready;
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("streaming_misses", |b| {
        b.iter_batched(
            || MemSystem::new(&MemConfig::default()),
            |mut mem| {
                let mut t = 0;
                for i in 0..10_000u64 {
                    t = mem.access_data(0x10_0000 + i * 64, t, false).ready;
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("core");
    g.sample_size(10);
    for name in ["x264", "povray", "streamcluster"] {
        let bench = benchmark(name, SuiteScale::Test);
        let mut probe = Core::new(&bench.program, CoreConfig::default(), 42);
        let cycles = probe.run(&mut (), 100_000_000).cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(format!("simulate_{name}"), |b| {
            b.iter(|| {
                let mut core = Core::new(&bench.program, CoreConfig::default(), 42);
                core.run(&mut (), 100_000_000).cycles
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_executor, bench_memory, bench_core
}
criterion_main!(benches);
