//! Ablations of the design choices DESIGN.md calls out: wrong-path fetch
//! modelling, core width, sampling mode, and the TIP pending-sample
//! (Drained-state) semantics. Each bench measures the simulation under the
//! ablated configuration; the printed `*_effect` values (emitted once, via
//! eprintln) document the accuracy impact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_ooo::{Core, CoreConfig};
use tip_workloads::{benchmark, SuiteScale};

fn tip_error(config: &CoreConfig, sampler: SamplerConfig, name: &'static str) -> (f64, u64) {
    let bench = benchmark(name, SuiteScale::Test);
    let mut bank = ProfilerBank::new(&bench.program, sampler, &[ProfilerId::Tip]);
    let mut core = Core::new(&bench.program, config.clone(), 42);
    let summary = core.run(&mut bank, 100_000_000);
    (
        bank.finish()
            .error_of(&bench.program, ProfilerId::Tip, Granularity::Instruction),
        summary.cycles,
    )
}

fn bench_wrong_path(c: &mut Criterion) {
    let with = CoreConfig::default();
    let without = CoreConfig {
        model_wrong_path: false,
        ..CoreConfig::default()
    };
    let (_, cycles_with) = tip_error(&with, SamplerConfig::periodic(101), "povray");
    let (_, cycles_without) = tip_error(&without, SamplerConfig::periodic(101), "povray");
    eprintln!(
        "[ablation] wrong-path fetch on/off: {cycles_with} vs {cycles_without} cycles on povray"
    );

    let mut g = c.benchmark_group("ablation-wrong-path");
    g.sample_size(10);
    for (label, cfg) in [("modelled", &with), ("stall-until-redirect", &without)] {
        g.bench_function(label, |b| {
            b.iter(|| tip_error(cfg, SamplerConfig::periodic(101), "povray").1)
        });
    }
    g.finish();
}

fn bench_core_width(c: &mut Criterion) {
    let wide = CoreConfig::default();
    let narrow = CoreConfig::small_2wide();
    let (_, cw) = tip_error(&wide, SamplerConfig::periodic(101), "x264");
    let (_, cn) = tip_error(&narrow, SamplerConfig::periodic(101), "x264");
    eprintln!("[ablation] 4-wide vs 2-wide on x264: {cw} vs {cn} cycles");

    let mut g = c.benchmark_group("ablation-width");
    g.sample_size(10);
    for (label, cfg) in [("boom-4w", &wide), ("small-2w", &narrow)] {
        g.bench_function(label, |b| {
            b.iter(|| tip_error(cfg, SamplerConfig::periodic(101), "x264").1)
        });
    }
    g.finish();
}

fn bench_drained_policy(c: &mut Criterion) {
    // The Drained-state write-enable trick: on a front-end-heavy benchmark,
    // disabling it (blaming the last-committed instruction) must hurt.
    let cfg = CoreConfig::default();
    let bench = benchmark("cam4", SuiteScale::Test);
    let err_of = |id: ProfilerId| {
        let mut bank = ProfilerBank::new(&bench.program, SamplerConfig::periodic(101), &[id]);
        let mut core = Core::new(&bench.program, cfg.clone(), 42);
        core.run(&mut bank, 100_000_000);
        bank.finish()
            .error_of(&bench.program, id, Granularity::Instruction)
    };
    let with_trick = err_of(ProfilerId::Tip);
    let without = err_of(ProfilerId::TipLastCommitDrain);
    eprintln!(
        "[ablation] drained write-enable trick on cam4: TIP {with_trick:.4} vs TIP-noWE {without:.4}"
    );

    let mut g = c.benchmark_group("ablation-drained-policy");
    g.sample_size(10);
    g.bench_function("first-dispatched", |b| b.iter(|| err_of(ProfilerId::Tip)));
    g.bench_function("last-committed", |b| {
        b.iter(|| err_of(ProfilerId::TipLastCommitDrain))
    });
    g.finish();
}

fn bench_sampling_mode(c: &mut Criterion) {
    let cfg = CoreConfig::default();
    let (ep, _) = tip_error(&cfg, SamplerConfig::periodic(101), "streamcluster");
    let (er, _) = tip_error(&cfg, SamplerConfig::random(101, 5), "streamcluster");
    eprintln!("[ablation] periodic vs random TIP error on streamcluster: {ep:.4} vs {er:.4}");

    let mut g = c.benchmark_group("ablation-sampling");
    g.sample_size(10);
    g.bench_function("periodic", |b| {
        b.iter(|| tip_error(&cfg, SamplerConfig::periodic(101), "streamcluster").0)
    });
    g.bench_function("random", |b| {
        b.iter(|| tip_error(&cfg, SamplerConfig::random(101, 5), "streamcluster").0)
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_wrong_path, bench_core_width, bench_drained_policy, bench_sampling_mode
}
criterion_main!(benches);
