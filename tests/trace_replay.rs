//! Integration: the trace crate composes with the whole system — record a
//! suite benchmark once, then evaluate profilers from the file without
//! re-simulating, including the sampled cycle stacks.

use tip_repro::core::{sampled_symbol_stacks, ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::Granularity;
use tip_repro::ooo::{Core, CoreConfig};
use tip_repro::trace::{TraceReader, TraceWriter};
use tip_repro::workloads::{benchmark, SuiteScale};

#[test]
fn record_once_profile_many() {
    let bench = benchmark("imagick", SuiteScale::Test);

    // Record the run without any profiler attached.
    let mut writer = TraceWriter::new(Vec::new());
    let mut core = Core::new(&bench.program, CoreConfig::default(), 7);
    let summary = core.run(&mut writer, 100_000_000);
    let buf = writer.into_inner().expect("flush");

    // Evaluate two different sampling schedules from the same recording —
    // something online profiling cannot do.
    let mut errors = Vec::new();
    for interval in [101, 499] {
        let mut bank = ProfilerBank::new(
            &bench.program,
            SamplerConfig::periodic(interval),
            &[ProfilerId::Tip],
        );
        let replayed = TraceReader::new(buf.as_slice())
            .replay_into(&mut bank)
            .expect("replay");
        assert_eq!(replayed, summary.cycles);
        let result = bank.finish();
        errors.push(result.error_of(&bench.program, ProfilerId::Tip, Granularity::Instruction));

        // Category-labelled samples survive the round trip.
        let map = bench.program.symbol_map(Granularity::Function);
        let stacks = sampled_symbol_stacks(result.samples_of(ProfilerId::Tip), &map);
        assert!(stacks.iter().any(|s| s.total() > 0.0));
    }
    // Denser sampling cannot be worse on the same recording.
    assert!(
        errors[0] <= errors[1] + 0.02,
        "dense {} vs sparse {}",
        errors[0],
        errors[1]
    );
}
