//! End-to-end verification of the Section 6 case study: TIP pinpoints the
//! CSR instructions, the fix removes the flushes, and performance roughly
//! doubles.

use tip_repro::core::{CycleCategory, ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::{InstrKind, Program, SymbolId};
use tip_repro::ooo::{Core, CoreConfig};
use tip_repro::workloads::{imagick_optimized, imagick_original};

fn profiled(program: &Program) -> (tip_repro::core::BankResult, u64) {
    let mut bank = ProfilerBank::new(
        program,
        SamplerConfig::periodic(101),
        &[ProfilerId::Tip, ProfilerId::Nci],
    );
    let mut core = Core::new(program, CoreConfig::default(), 7);
    let summary = core.run(&mut bank, 200_000_000);
    (bank.finish(), summary.cycles)
}

fn csr_share(program: &Program, profile: &tip_repro::core::Profile) -> f64 {
    program
        .instrs()
        .iter()
        .enumerate()
        .filter(|(_, i)| i.kind() == InstrKind::CsrFlush)
        .map(|(idx, _)| profile.share(SymbolId(idx as u32)))
        .sum()
}

#[test]
fn speedup_is_close_to_paper() {
    let orig = imagick_original(400_000);
    let opt = imagick_optimized(400_000);
    let (_, cycles_orig) = profiled(&orig);
    let (_, cycles_opt) = profiled(&opt);
    let speedup = cycles_orig as f64 / cycles_opt as f64;
    assert!(
        (1.5..2.5).contains(&speedup),
        "speed-up should be near the paper's 1.93x, got {speedup:.2}x"
    );
}

#[test]
fn tip_attributes_time_to_the_csr_instructions_nci_does_not() {
    let orig = imagick_original(400_000);
    let (result, _) = profiled(&orig);
    let g = tip_repro::isa::Granularity::Instruction;
    let tip = csr_share(&orig, &result.profile_of(&orig, ProfilerId::Tip, g));
    let nci = csr_share(&orig, &result.profile_of(&orig, ProfilerId::Nci, g));
    let oracle = csr_share(&orig, &result.oracle.profile(&orig, g));

    assert!(tip > 0.10, "TIP must expose the CSR hotspot, got {tip:.3}");
    assert!(
        (tip - oracle).abs() < 0.05,
        "TIP ({tip:.3}) tracks Oracle ({oracle:.3})"
    );
    assert!(
        nci < tip / 3.0,
        "NCI ({nci:.3}) must miss most CSR time vs TIP ({tip:.3})"
    );
}

#[test]
fn optimized_version_has_no_flush_cycles() {
    let opt = imagick_optimized(400_000);
    let (result, _) = profiled(&opt);
    let stack = result.oracle.cycle_stack();
    assert!(
        stack.get(CycleCategory::MiscFlush) < 0.001 * stack.total(),
        "nop'd version must not flush"
    );
}

#[test]
fn optimization_improves_ipc_superlinearly() {
    // The paper's second-order effect: removing flushes helps more than the
    // direct CSR time (expected 1.28x) because latency hiding recovers.
    let orig = imagick_original(400_000);
    let opt = imagick_optimized(400_000);
    let (result, cycles_orig) = profiled(&orig);
    let (_, cycles_opt) = profiled(&opt);

    let g = tip_repro::isa::Granularity::Instruction;
    let direct_share = csr_share(&orig, &result.oracle.profile(&orig, g));
    let expected_from_direct = 1.0 / (1.0 - direct_share);
    let actual = cycles_orig as f64 / cycles_opt as f64;
    assert!(
        actual > expected_from_direct + 0.15,
        "speed-up {actual:.2}x should exceed the direct-time expectation {expected_from_direct:.2}x"
    );
}

#[test]
fn both_tip_and_nci_are_fine_at_function_level() {
    // The paper: the function-level profile does not identify the problem —
    // both profilers agree with Oracle there (0.3% / 0.6%).
    let orig = imagick_original(400_000);
    let (result, _) = profiled(&orig);
    let g = tip_repro::isa::Granularity::Function;
    assert!(result.error_of(&orig, ProfilerId::Tip, g) < 0.05);
    assert!(result.error_of(&orig, ProfilerId::Nci, g) < 0.12);
}
