//! Sampling-related end-to-end behaviour: determinism, frequency trends,
//! and lock-step scheduling across profilers.

use tip_repro::core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::Granularity;
use tip_repro::ooo::{Core, CoreConfig};
use tip_repro::workloads::{benchmark, SuiteScale};

fn tip_error(name: &'static str, interval: u64, scale: SuiteScale, seed: u64) -> f64 {
    let bench = benchmark(name, scale);
    let mut bank = ProfilerBank::new(
        &bench.program,
        SamplerConfig::periodic(interval),
        &[ProfilerId::Tip],
    );
    let mut core = Core::new(&bench.program, CoreConfig::default(), seed);
    core.run(&mut bank, 400_000_000);
    bank.finish()
        .error_of(&bench.program, ProfilerId::Tip, Granularity::Instruction)
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = tip_error("perlbench", 149, SuiteScale::Test, 7);
    let b = tip_error("perlbench", 149, SuiteScale::Test, 7);
    assert_eq!(a, b, "identical seeds must reproduce bit-identical results");
}

#[test]
fn error_shrinks_with_sampling_frequency() {
    // The Figure 11a trend: more samples, less unsystematic error. Compare
    // a very sparse schedule against a dense one.
    let sparse = tip_error("namd", 1499, SuiteScale::Small, 7);
    let dense = tip_error("namd", 101, SuiteScale::Small, 7);
    assert!(
        dense < sparse,
        "TIP error must fall with frequency: dense {dense:.4} vs sparse {sparse:.4}"
    );
}

#[test]
fn all_profilers_share_the_schedule() {
    let bench = benchmark("x264", SuiteScale::Test);
    let mut bank = ProfilerBank::new(
        &bench.program,
        SamplerConfig::periodic(101),
        &ProfilerId::ALL,
    );
    let mut core = Core::new(&bench.program, CoreConfig::default(), 7);
    core.run(&mut bank, 100_000_000);
    let result = bank.finish();
    let counts: Vec<(ProfilerId, usize)> = result
        .samples
        .iter()
        .map(|(id, s)| (*id, s.len()))
        .collect();
    let max = counts
        .iter()
        .map(|&(_, n)| n)
        .max()
        .expect("profilers present");
    for &(id, n) in &counts {
        // Pending samples at the very end of the run may be dropped, so
        // counts can differ by a handful, never more.
        assert!(
            max - n <= 4,
            "{id} resolved {n} of {max} scheduled samples — schedules diverged?"
        );
    }
}

#[test]
fn random_sampling_is_reproducible_per_seed() {
    let bench = benchmark("lbm", SuiteScale::Test);
    let run = |sampler_seed: u64| {
        let mut bank = ProfilerBank::new(
            &bench.program,
            SamplerConfig::random(149, sampler_seed),
            &[ProfilerId::Tip],
        );
        let mut core = Core::new(&bench.program, CoreConfig::default(), 7);
        core.run(&mut bank, 100_000_000);
        let r = bank.finish();
        r.samples_of(ProfilerId::Tip)
            .iter()
            .map(|s| s.cycle)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(
        run(3),
        run(4),
        "different sampler seeds must pick different cycles"
    );
}

#[test]
fn periodic_aliasing_is_possible_and_random_sampling_fixes_it() {
    // A tight loop whose commit pattern has period 2 aliases with any even
    // sampling interval (the Figure 11b pathology); random sampling within
    // the same interval restores accuracy.
    use tip_repro::isa::{BranchBehavior, Instr, ProgramBuilder};
    let mut b = ProgramBuilder::named("aliasing");
    let main = b.function("main");
    let body = b.block(main);
    b.push(body, Instr::int_alu(None, [None, None]));
    b.push(
        body,
        Instr::branch(
            body,
            BranchBehavior::Loop {
                taken_iters: 60_000,
            },
        ),
    );
    let exit = b.block(main);
    b.push(exit, Instr::halt());
    let program = b.build().expect("valid");

    let run = |sampler: SamplerConfig| {
        let mut bank = ProfilerBank::new(&program, sampler, &[ProfilerId::Tip]);
        let mut core = Core::new(&program, CoreConfig::default(), 7);
        core.run(&mut bank, 100_000_000);
        bank.finish()
            .error_of(&program, ProfilerId::Tip, Granularity::Instruction)
    };
    let aliased = run(SamplerConfig::periodic(100));
    let random = run(SamplerConfig::random(100, 9));
    assert!(
        aliased > random + 0.05,
        "even interval should alias (periodic {aliased:.3} vs random {random:.3})"
    );
}
