//! Property-based tests over randomly generated workloads: the whole
//! pipeline (generator → executor → core → profilers) upholds its
//! invariants for arbitrary parameter combinations.

use proptest::prelude::*;
use tip_repro::core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::{Executor, Granularity};
use tip_repro::ooo::{Core, CoreConfig, RunExit};
use tip_repro::workloads::{generate, InstrMix, SynthParams};

fn arb_params() -> impl Strategy<Value = SynthParams> {
    (
        1u32..3,       // n_funcs
        2u32..10,      // block len min
        0u32..12,      // extra block len
        0u32..8,       // code segments
        1u32..20,      // inner iters
        0.0f64..0.9,   // dep prob
        0.0f64..1.0,   // diamond prob
        0.05f64..0.95, // bernoulli prob
        prop::sample::select(vec![4u64 << 10, 64 << 10, 1 << 20, 16 << 20]),
        0.0f64..1.0,  // stride share
        0.0f64..0.3,  // pointer chase
        0.0f64..0.15, // csr flush prob
    )
        .prop_map(
            |(
                n_funcs,
                bl_min,
                bl_extra,
                segs,
                iters,
                dep,
                diamond,
                bern,
                ws,
                stride,
                chase,
                csr,
            )| {
                SynthParams {
                    n_funcs,
                    block_len: (bl_min, bl_min + bl_extra),
                    code_segments: segs,
                    inner_iters: iters,
                    mix: InstrMix::int_heavy(),
                    dep_prob: dep,
                    diamond_prob: diamond,
                    pattern_diamond_prob: 0.5,
                    bernoulli_prob: bern,
                    working_set: ws,
                    stride_share: stride,
                    pointer_chase: chase,
                    csr_flush_prob: csr,
                    fault_every: None,
                    dyn_instrs: 6_000,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn any_generated_program_simulates_to_completion(params in arb_params(), seed in 0u64..1000) {
        let program = generate("prop", &params, seed);
        let dyn_len = Executor::new(&program, seed).count() as u64;
        prop_assert!(dyn_len > 0);

        let mut bank = ProfilerBank::new(&program, SamplerConfig::periodic(53), &[ProfilerId::Tip, ProfilerId::Nci]);
        let mut core = Core::new(&program, CoreConfig::default(), seed);
        let summary = core.run(&mut bank, 50_000_000);
        prop_assert_eq!(summary.exit, RunExit::Halted);
        // The core commits exactly the functional execution's instructions.
        prop_assert_eq!(summary.instructions, dyn_len);

        let result = bank.finish();
        // Oracle accounts (almost) every cycle.
        let attributed: f64 = result.oracle.per_instr().iter().sum();
        prop_assert!((attributed - summary.cycles as f64).abs() < 64.0);

        // Errors are proper fractions at every granularity.
        for g in [Granularity::Instruction, Granularity::BasicBlock, Granularity::Function] {
            for id in [ProfilerId::Tip, ProfilerId::Nci] {
                let e = result.error_of(&program, id, g);
                prop_assert!((0.0..=1.0).contains(&e), "error {} out of range", e);
            }
        }
    }

    #[test]
    fn commit_counts_are_independent_of_sampling(params in arb_params()) {
        let program = generate("prop2", &params, 11);
        let run_with = |interval: u64| {
            let mut bank = ProfilerBank::new(&program, SamplerConfig::periodic(interval), &[ProfilerId::Tip]);
            let mut core = Core::new(&program, CoreConfig::default(), 11);
            let s = core.run(&mut bank, 50_000_000);
            (s.cycles, s.instructions)
        };
        // Profiling is pure observation: it never perturbs the simulation.
        prop_assert_eq!(run_with(31), run_with(977));
    }
}
