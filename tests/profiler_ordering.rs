//! The paper's headline orderings, verified end to end at reduced scale:
//! TIP is the most accurate profiler at instruction level, NCI+ILP is
//! *worse* than NCI, and everyone is much better at function level.

use tip_repro::core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::Granularity;
use tip_repro::ooo::{Core, CoreConfig};
use tip_repro::workloads::{benchmark, SuiteScale};

fn errors_for(name: &'static str, granularity: Granularity) -> Vec<(ProfilerId, f64)> {
    let bench = benchmark(name, SuiteScale::Small);
    let mut bank = ProfilerBank::new(
        &bench.program,
        SamplerConfig::periodic(149),
        &ProfilerId::ALL,
    );
    let mut core = Core::new(&bench.program, CoreConfig::default(), 7);
    core.run(&mut bank, 400_000_000);
    let result = bank.finish();
    ProfilerId::ALL
        .iter()
        .map(|&id| (id, result.error_of(&bench.program, id, granularity)))
        .collect()
}

fn get(errors: &[(ProfilerId, f64)], id: ProfilerId) -> f64 {
    errors
        .iter()
        .find(|(i, _)| *i == id)
        .expect("profiler present")
        .1
}

#[test]
fn tip_wins_at_instruction_level() {
    // Representative benchmark per class.
    for name in ["x264", "povray", "streamcluster"] {
        let e = errors_for(name, Granularity::Instruction);
        let tip = get(&e, ProfilerId::Tip);
        for other in [
            ProfilerId::Software,
            ProfilerId::Dispatch,
            ProfilerId::Lci,
            ProfilerId::Nci,
            ProfilerId::TipIlp,
        ] {
            assert!(
                tip <= get(&e, other) + 0.01,
                "{name}: TIP ({:.3}) must beat {other} ({:.3})",
                tip,
                get(&e, other)
            );
        }
        assert!(
            tip < 0.10,
            "{name}: TIP instruction error should be small, got {tip:.3}"
        );
    }
}

#[test]
fn nci_beats_lci_and_software_at_instruction_level() {
    for name in ["x264", "imagick"] {
        let e = errors_for(name, Granularity::Instruction);
        assert!(get(&e, ProfilerId::Nci) < get(&e, ProfilerId::Software));
        assert!(get(&e, ProfilerId::Nci) < get(&e, ProfilerId::Lci));
    }
}

#[test]
fn nci_ilp_is_worse_than_nci() {
    // The paper's Figure 11c: naively adding commit-parallelism awareness
    // to NCI hurts, because after a stall the next n committers share a
    // sample that belongs entirely to the stalling instruction.
    let e = errors_for("streamcluster", Granularity::Instruction);
    assert!(
        get(&e, ProfilerId::NciIlp) > get(&e, ProfilerId::Nci),
        "NCI+ILP ({:.3}) must be worse than NCI ({:.3})",
        get(&e, ProfilerId::NciIlp),
        get(&e, ProfilerId::Nci)
    );
}

#[test]
fn tip_ilp_explains_the_gap_on_flush_code() {
    // On flush-intensive code, handling flushes (TIP-ILP vs NCI) matters.
    let e = errors_for("imagick", Granularity::Instruction);
    assert!(get(&e, ProfilerId::TipIlp) < get(&e, ProfilerId::Nci));
    // And handling ILP (TIP vs TIP-ILP) matters everywhere.
    assert!(get(&e, ProfilerId::Tip) < get(&e, ProfilerId::TipIlp));
}

#[test]
fn function_level_is_easy_for_commit_based_profilers() {
    for name in ["namd", "imagick"] {
        let e = errors_for(name, Granularity::Function);
        for id in [
            ProfilerId::Lci,
            ProfilerId::Nci,
            ProfilerId::TipIlp,
            ProfilerId::Tip,
        ] {
            // NCI misattributes imagick's flush time across a function
            // boundary (ceil's flush blamed on the caller), so its
            // function-level error is the largest of the commit-based
            // profilers — still far below Software/Dispatch territory.
            let limit = if id == ProfilerId::Nci { 0.12 } else { 0.08 };
            assert!(
                get(&e, id) < limit,
                "{name}: {id} should be accurate at function level, got {:.3}",
                get(&e, id)
            );
        }
    }
}

#[test]
fn software_and_dispatch_are_biased_even_at_function_level() {
    // Tagging at fetch/dispatch attributes stalls to instructions far from
    // the culprit — visible even at function granularity on stall-heavy
    // code (paper: up to 31.7% / 27.4%).
    let e = errors_for("mcf", Granularity::Function);
    let best_commit_based = get(&e, ProfilerId::Tip).min(get(&e, ProfilerId::Nci));
    let software = get(&e, ProfilerId::Software);
    assert!(
        software > 2.0 * best_commit_based,
        "Software ({software:.3}) should be clearly worse than commit-based ({best_commit_based:.3})"
    );
}
