//! Cross-crate invariants of the Oracle golden reference: every cycle is
//! accounted, exactly once, to real instructions, consistently across
//! granularities.

use tip_repro::core::{CycleCategory, ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::Granularity;
use tip_repro::ooo::{Core, CoreConfig};
use tip_repro::workloads::{benchmark, SuiteScale};

fn run(
    name: &'static str,
) -> (
    tip_repro::workloads::Benchmark,
    tip_repro::core::BankResult,
    u64,
) {
    let bench = benchmark(name, SuiteScale::Test);
    let mut bank = ProfilerBank::new(
        &bench.program,
        SamplerConfig::periodic(101),
        &[ProfilerId::Tip],
    );
    let mut core = Core::new(&bench.program, CoreConfig::default(), 7);
    let summary = core.run(&mut bank, 100_000_000);
    let cycles = summary.cycles;
    (bench, bank.finish(), cycles)
}

#[test]
fn oracle_accounts_every_cycle() {
    for name in ["exchange2", "imagick", "mcf", "gcc"] {
        let (_, result, cycles) = run(name);
        let attributed: f64 = result.oracle.per_instr().iter().sum();
        // Unresolved drain cycles at the very end of the run may be dropped;
        // everything else must be accounted.
        assert!(
            (attributed - cycles as f64).abs() < 64.0,
            "{name}: attributed {attributed:.1} of {cycles} cycles"
        );
        assert_eq!(result.oracle.total_cycles(), cycles);
    }
}

#[test]
fn cycle_stack_matches_per_instruction_totals() {
    let (_, result, _) = run("povray");
    let stack_total = result.oracle.cycle_stack().total();
    let instr_total: f64 = result.oracle.per_instr().iter().sum();
    assert!((stack_total - instr_total).abs() < 1e-6);
}

#[test]
fn granularities_aggregate_consistently() {
    let (bench, result, _) = run("leela");
    let p = &bench.program;
    let instr = result.oracle.profile(p, Granularity::Instruction);
    let block = result.oracle.profile(p, Granularity::BasicBlock);
    let func = result.oracle.profile(p, Granularity::Function);
    assert!((instr.total() - block.total()).abs() < 1e-6);
    assert!((block.total() - func.total()).abs() < 1e-6);

    // Summing instruction weights per function must reproduce the
    // function-level profile.
    for (fi, f) in p.functions().iter().enumerate() {
        let mut sum = 0.0;
        for (i, w) in instr.weights().iter().enumerate() {
            if p.function_of(tip_repro::isa::InstrIdx::new(i as u32)) == f.id() {
                sum += w;
            }
        }
        let fw = func.weights()[fi];
        assert!(
            (sum - fw).abs() < 1e-6,
            "function {} mismatch: {sum} vs {fw}",
            f.name()
        );
    }
}

#[test]
fn error_at_coarser_granularity_never_exceeds_finer() {
    // Misattribution within the correct function is invisible at function
    // level, so error can only shrink as granularity coarsens.
    for name in ["imagick", "lbm", "deepsjeng"] {
        let (bench, result, _) = run(name);
        {
            let id = ProfilerId::Tip;
            let ei = result.error_of(&bench.program, id, Granularity::Instruction);
            let eb = result.error_of(&bench.program, id, Granularity::BasicBlock);
            let ef = result.error_of(&bench.program, id, Granularity::Function);
            assert!(eb <= ei + 1e-9, "{name}: block {eb} > instr {ei}");
            assert!(ef <= eb + 1e-9, "{name}: func {ef} > block {eb}");
        }
    }
}

#[test]
fn flush_benchmark_shows_flush_categories() {
    let (_, result, _) = run("imagick");
    let stack = result.oracle.cycle_stack();
    assert!(
        stack.get(CycleCategory::MiscFlush) > 0.03 * stack.total(),
        "imagick must spend >3% on CSR flushes (got {:.1}%)",
        100.0 * stack.get(CycleCategory::MiscFlush) / stack.total()
    );
}

#[test]
fn compute_benchmark_mostly_executes() {
    let (_, result, _) = run("swaptions");
    let stack = result.oracle.cycle_stack();
    assert!(
        stack.get(CycleCategory::Execution) > 0.5 * stack.total(),
        "swaptions must spend >50% committing (got {:.1}%)",
        100.0 * stack.get(CycleCategory::Execution) / stack.total()
    );
}

#[test]
fn stall_benchmark_mostly_stalls() {
    let (_, result, _) = run("mcf");
    let stack = result.oracle.cycle_stack();
    assert!(
        stack.get(CycleCategory::LoadStall) > 0.4 * stack.total(),
        "mcf must be load-stall dominated"
    );
}
